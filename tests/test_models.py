"""Tests of the model zoo against published layer geometries."""

import pytest

from repro.graph.layer import EltwiseAddLayer
from repro.models import (
    MODEL_BUILDERS,
    build_alexnet,
    build_googlenet,
    build_mobilenet_v1,
    build_mobilenet_v2,
    build_model,
    build_resnet18,
    build_resnet50,
    build_vgg,
)
from repro.models.googlenet import INCEPTION_SPECS


class TestRegistry:
    def test_all_evaluation_models_present(self):
        for name in ("alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"):
            assert name in MODEL_BUILDERS

    def test_build_model_case_insensitive(self):
        assert build_model("AlexNet").name == "alexnet"

    def test_build_model_unknown(self):
        with pytest.raises(KeyError):
            build_model("resnet-50")

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_every_model_validates(self, name):
        network = build_model(name)
        network.validate()
        assert network.conv_layers(), f"{name} has no convolution layers"


class TestAlexNet:
    def test_conv_layer_count(self):
        assert len(build_alexnet().conv_layers()) == 5

    def test_published_feature_map_shapes(self):
        shapes = build_alexnet().infer_shapes()
        assert shapes["conv1"] == (96, 55, 55)
        assert shapes["pool1"] == (96, 27, 27)
        assert shapes["conv2"] == (256, 27, 27)
        assert shapes["pool2"] == (256, 13, 13)
        assert shapes["conv3"] == (384, 13, 13)
        assert shapes["conv5"] == (256, 13, 13)
        assert shapes["pool5"] == (256, 6, 6)
        assert shapes["fc6"] == (4096, 1, 1)
        assert shapes["prob"] == (1000, 1, 1)

    def test_conv1_scenario_is_k11_stride4(self):
        scenarios = build_alexnet().conv_scenarios()
        conv1 = scenarios["conv1"]
        assert conv1.k == 11 and conv1.stride == 4 and conv1.c == 3

    def test_grouped_convolutions(self):
        scenarios = build_alexnet().conv_scenarios()
        assert scenarios["conv2"].groups == 2
        assert scenarios["conv4"].groups == 2
        assert scenarios["conv5"].groups == 2
        assert scenarios["conv3"].groups == 1

    def test_total_macs_near_published(self):
        # AlexNet convolutions are ~0.66 GMACs with grouping.
        gmacs = build_alexnet().total_conv_macs() / 1e9
        assert 0.5 < gmacs < 0.8


class TestVGG:
    @pytest.mark.parametrize(
        "config,expected_convs",
        [("A", 8), ("B", 10), ("C", 13), ("D", 13), ("E", 16)],
    )
    def test_conv_counts_per_configuration(self, config, expected_convs):
        assert len(build_vgg(config).conv_layers()) == expected_convs

    def test_unknown_configuration(self):
        with pytest.raises(KeyError):
            build_vgg("F")

    def test_all_convs_are_3x3_or_1x1(self):
        for config in ("A", "B", "C", "D", "E"):
            for layer in build_vgg(config).conv_layers():
                assert layer.kernel in (1, 3)

    def test_config_c_has_1x1_layers(self):
        kernels = [layer.kernel for layer in build_vgg("C").conv_layers()]
        assert kernels.count(1) == 3
        assert all(layer.kernel == 3 for layer in build_vgg("D").conv_layers())

    def test_feature_map_pyramid(self):
        shapes = build_vgg("D").infer_shapes()
        assert shapes["conv1_1"] == (64, 224, 224)
        assert shapes["pool1"] == (64, 112, 112)
        assert shapes["pool5"] == (512, 7, 7)
        assert shapes["prob"] == (1000, 1, 1)

    def test_vgg16_macs_near_published(self):
        # VGG-D (VGG-16) convolutions are ~15.3 GMACs.
        gmacs = build_vgg("D").total_conv_macs() / 1e9
        assert 14.0 < gmacs < 16.5

    def test_vgg19_has_more_work_than_vgg16(self):
        assert build_vgg("E").total_conv_macs() > build_vgg("D").total_conv_macs()


class TestGoogLeNet:
    def test_conv_layer_count(self):
        # 3 stem convolutions + 9 inception modules x 6 convolutions each.
        assert len(build_googlenet().conv_layers()) == 3 + 9 * 6

    def test_inception_output_channels(self):
        shapes = build_googlenet().infer_shapes()
        expected = {
            "inception_3a/output": 256,
            "inception_3b/output": 480,
            "inception_4a/output": 512,
            "inception_4e/output": 832,
            "inception_5b/output": 1024,
        }
        for name, channels in expected.items():
            assert shapes[name][0] == channels

    def test_spatial_pyramid(self):
        shapes = build_googlenet().infer_shapes()
        assert shapes["conv1/7x7_s2"] == (64, 112, 112)
        assert shapes["pool2/3x3_s2"][1:] == (28, 28)
        assert shapes["inception_4a/output"][1:] == (14, 14)
        assert shapes["inception_5b/output"][1:] == (7, 7)
        assert shapes["pool5/7x7_s1"] == (1024, 1, 1)
        assert shapes["prob"] == (1000, 1, 1)

    def test_concat_inputs_are_four_branches(self):
        network = build_googlenet()
        for spec in INCEPTION_SPECS:
            assert len(network.inputs_of(f"{spec.name}/output")) == 4

    def test_kernel_size_mix(self):
        kernels = {layer.kernel for layer in build_googlenet().conv_layers()}
        assert kernels == {1, 3, 5, 7}

    def test_total_macs_near_published(self):
        # GoogLeNet is ~1.5-1.6 GMACs.
        gmacs = build_googlenet().total_conv_macs() / 1e9
        assert 1.3 < gmacs < 1.8

    def test_dag_has_multi_consumer_nodes(self):
        """The inception input fans out to four branches (the paper's Figure 3)."""
        network = build_googlenet()
        fanouts = [len(network.consumers_of(name)) for name in network.layer_names()]
        assert max(fanouts) >= 4

    def test_default_build_omits_auxiliary_classifiers(self):
        network = build_googlenet()
        assert [layer.name for layer in network.output_layers()] == ["prob"]

    def test_aux_classifiers_add_two_heads(self):
        """Section 5 of the GoogLeNet paper: heads after inception_4a/4d."""
        network = build_googlenet(aux_classifiers=True)
        assert network.name == "googlenet-aux"
        outputs = [layer.name for layer in network.output_layers()]
        assert sorted(outputs) == ["loss1/prob", "loss2/prob", "prob"]
        shapes = network.infer_shapes()
        for head in ("loss1", "loss2"):
            # 14x14 inception output -> 5x5/3 average pool -> 4x4 spatial.
            assert shapes[f"{head}/ave_pool"][1:] == (4, 4)
            assert shapes[f"{head}/conv"][0] == 128
            assert shapes[f"{head}/fc"] == (1024, 1, 1)
            assert shapes[f"{head}/prob"] == (1000, 1, 1)
        # The aux heads hang off the module outputs without altering the trunk.
        assert len(network.conv_layers()) == (3 + 9 * 6) + 2
        assert shapes["prob"] == (1000, 1, 1)


class TestResNet18:
    def test_conv_layer_count(self):
        # 1 stem + 8 basic blocks x 2 convolutions + 3 projection shortcuts.
        assert len(build_resnet18().conv_layers()) == 20

    def test_published_feature_map_pyramid(self):
        shapes = build_resnet18().infer_shapes()
        assert shapes["conv1"] == (64, 112, 112)
        assert shapes["pool1"] == (64, 56, 56)
        assert shapes["conv2_2/relu2"] == (64, 56, 56)
        assert shapes["conv3_2/relu2"] == (128, 28, 28)
        assert shapes["conv4_2/relu2"] == (256, 14, 14)
        assert shapes["conv5_2/relu2"] == (512, 7, 7)
        assert shapes["pool5"] == (512, 1, 1)
        assert shapes["prob"] == (1000, 1, 1)

    def test_residual_joins(self):
        network = build_resnet18()
        adds = [layer for layer in network.layers() if isinstance(layer, EltwiseAddLayer)]
        assert len(adds) == 8
        for layer in adds:
            assert len(network.inputs_of(layer.name)) == 2

    def test_identity_vs_projection_shortcuts(self):
        network = build_resnet18()
        downsamples = [
            layer.name for layer in network.conv_layers() if "downsample" in layer.name
        ]
        assert downsamples == [
            "conv3_1/downsample",
            "conv4_1/downsample",
            "conv5_1/downsample",
        ]
        for name in downsamples:
            layer = network.layer(name)
            assert layer.kernel == 1 and layer.stride == 2
        # The identity blocks' inputs fan out to the conv path and the join.
        assert set(network.consumers_of("pool1")) == {"conv2_1/conv1", "conv2_1/add"}

    def test_total_macs_near_published(self):
        # ResNet-18 convolutions are ~1.8 GMACs.
        gmacs = build_resnet18().total_conv_macs() / 1e9
        assert 1.6 < gmacs < 2.0

    def test_scaled_variant_keeps_structure(self):
        scaled = build_resnet18(input_size=64, base_width=8)
        assert len(scaled.conv_layers()) == 20
        assert scaled.infer_shapes()["pool5"] == (64, 1, 1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_resnet18(input_size=100)
        with pytest.raises(ValueError):
            build_resnet18(base_width=0)


class TestMobileNetV1:
    def test_conv_layer_count(self):
        # 1 stem + 13 blocks x (depthwise + pointwise).
        assert len(build_mobilenet_v1().conv_layers()) == 27

    def test_depthwise_scenarios(self):
        scenarios = build_mobilenet_v1().conv_scenarios()
        depthwise = {name: s for name, s in scenarios.items() if name.endswith("/dw")}
        assert len(depthwise) == 13
        for name, scenario in depthwise.items():
            assert scenario.is_depthwise, name
            assert scenario.groups == scenario.c == scenario.m
            assert scenario.k == 3
        pointwise = {name: s for name, s in scenarios.items() if name.endswith("/sep")}
        assert len(pointwise) == 13
        for scenario in pointwise.values():
            assert scenario.is_pointwise and scenario.groups == 1

    def test_published_feature_map_pyramid(self):
        shapes = build_mobilenet_v1().infer_shapes()
        assert shapes["conv1"] == (32, 112, 112)
        assert shapes["conv2/sep"] == (64, 112, 112)
        assert shapes["conv5/sep"] == (256, 28, 28)
        assert shapes["conv11/sep"] == (512, 14, 14)
        assert shapes["conv14/sep"] == (1024, 7, 7)
        assert shapes["pool6"] == (1024, 1, 1)
        assert shapes["prob"] == (1000, 1, 1)

    def test_total_macs_near_published(self):
        # MobileNet-v1 is ~0.57 GMACs (the paper reports 569M mult-adds).
        gmacs = build_mobilenet_v1().total_conv_macs() / 1e9
        assert 0.5 < gmacs < 0.65

    def test_width_multiplier_thins_channels(self):
        half = build_mobilenet_v1(width_multiplier=0.5)
        shapes = half.infer_shapes()
        assert shapes["conv1"][0] == 16
        assert shapes["conv14/sep"][0] == 512
        assert half.total_conv_macs() < 0.3 * build_mobilenet_v1().total_conv_macs()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_mobilenet_v1(input_size=90)
        with pytest.raises(ValueError):
            build_mobilenet_v1(width_multiplier=0.0)


class TestResNet50:
    def test_conv_layer_count(self):
        # 1 stem + 16 bottlenecks x 3 convolutions + 4 projection shortcuts.
        assert len(build_resnet50().conv_layers()) == 53

    def test_published_feature_map_pyramid(self):
        shapes = build_resnet50().infer_shapes()
        assert shapes["pool1"] == (64, 56, 56)
        assert shapes["conv2_3/relu3"] == (256, 56, 56)
        assert shapes["conv3_4/relu3"] == (512, 28, 28)
        assert shapes["conv4_6/relu3"] == (1024, 14, 14)
        assert shapes["conv5_3/relu3"] == (2048, 7, 7)
        assert shapes["pool5"] == (2048, 1, 1)

    def test_residual_joins_and_projections(self):
        network = build_resnet50()
        adds = [layer for layer in network.layers() if isinstance(layer, EltwiseAddLayer)]
        assert len(adds) == 16
        downsamples = [
            layer.name for layer in network.conv_layers() if "downsample" in layer.name
        ]
        # Every stage's first block projects (conv2_1 changes width at stride 1).
        assert downsamples == [
            "conv2_1/downsample",
            "conv3_1/downsample",
            "conv4_1/downsample",
            "conv5_1/downsample",
        ]

    def test_total_macs_near_published(self):
        # ResNet-50 convolutions are ~4.1 GMACs.
        gmacs = build_resnet50().total_conv_macs() / 1e9
        assert 3.8 < gmacs < 4.3

    def test_scaled_variant_keeps_structure(self):
        scaled = build_resnet50(input_size=64, base_width=8)
        assert len(scaled.conv_layers()) == 53
        assert scaled.infer_shapes()["pool5"] == (256, 1, 1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_resnet50(input_size=100)
        with pytest.raises(ValueError):
            build_resnet50(base_width=0)


class TestMobileNetV2:
    def test_conv_layer_count(self):
        # Stem + head + 17 inverted residuals (16 with expansion, 1 without).
        assert len(build_mobilenet_v2().conv_layers()) == 52

    def test_published_feature_map_pyramid(self):
        shapes = build_mobilenet_v2().infer_shapes()
        assert shapes["conv1"] == (32, 112, 112)
        assert shapes["block1/project"] == (16, 112, 112)
        assert shapes["block17/project"] == (320, 7, 7)
        assert shapes["conv_head"] == (1280, 7, 7)
        assert shapes["pool8"] == (1280, 1, 1)

    def test_residual_joins_only_where_shapes_allow(self):
        network = build_mobilenet_v2()
        adds = [layer for layer in network.layers() if isinstance(layer, EltwiseAddLayer)]
        # Table 2 of the publication: n-1 joins per stage with n repeats.
        assert len(adds) == 10

    def test_depthwise_interior_is_expanded(self):
        network = build_mobilenet_v2()
        dw = network.layer("block2/dw")
        assert dw.groups == dw.out_channels == 96  # 16 in-channels x t=6

    def test_total_macs_near_published(self):
        # MobileNet-v2 convolutions are ~300 MMACs.
        mmacs = build_mobilenet_v2().total_conv_macs() / 1e6
        assert 270 < mmacs < 330

    def test_scaled_variant_keeps_structure(self):
        scaled = build_mobilenet_v2(input_size=64, width_multiplier=0.125)
        assert len(scaled.conv_layers()) == 52

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_mobilenet_v2(input_size=100)
        with pytest.raises(ValueError):
            build_mobilenet_v2(width_multiplier=0)
