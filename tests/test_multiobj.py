"""The multi-objective layer: cost vectors, Pareto sorting and frontiers.

Covers the three layers of :mod:`repro.multiobj` plus the issue's acceptance
criteria: the frontier's min-time point is exactly the scalar PBQP plan, the
serialized frontier is byte-identical across runs under a fixed seed, and a
tightened peak-workspace budget flips convolution layers away from the
scratch-hungry families on multiple platforms.
"""

from __future__ import annotations

import pytest

from repro.core.selector import PBQPSelector, SelectionContext
from repro.multiobj.frontier import (
    FRONTIER_FORMAT,
    Frontier,
    build_frontier,
    solve_under_workspace_cap,
    workspace_levels,
)
from repro.multiobj.pareto import (
    _nsga2_sort,
    _pareto_front,
    knee_index,
    lexicographic_index,
    min_time_under_index,
)
from repro.multiobj.vector import CostVector


class TestCostVector:
    def test_combine_adds_times_and_energies_but_maxes_workspaces(self):
        a = CostVector(time_ms=2.0, peak_workspace_bytes=100.0, energy_proxy_j=0.5)
        b = CostVector(time_ms=3.0, peak_workspace_bytes=40.0, energy_proxy_j=0.25)
        combined = a.combine(b)
        assert combined.time_ms == pytest.approx(5.0)
        assert combined.peak_workspace_bytes == pytest.approx(100.0)
        assert combined.energy_proxy_j == pytest.approx(0.75)

    def test_total_is_sequential_composition(self):
        vectors = [
            CostVector(1.0, 10.0, 0.1, accuracy_proxy=1e-3),
            CostVector(2.0, 30.0, 0.2),
            CostVector(3.0, 20.0, 0.3, accuracy_proxy=2e-3),
        ]
        total = CostVector.total(vectors)
        # Times, energies and accuracy losses add; peak workspace is a max.
        assert total.as_tuple() == pytest.approx((6.0, 30.0, 0.6, 3e-3))

    def test_dominance(self):
        better = CostVector(1.0, 10.0, 0.1)
        worse = CostVector(2.0, 10.0, 0.1)
        incomparable = CostVector(0.5, 20.0, 0.1)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(incomparable)
        assert not incomparable.dominates(better)
        assert not better.dominates(better)  # equal: no strict improvement

    def test_satisfies_constraints(self):
        vector = CostVector(time_ms=5.0, peak_workspace_bytes=1024.0)
        assert vector.satisfies({})
        assert vector.satisfies({"time_ms_max": 5.0, "peak_workspace_bytes_max": 2048})
        assert not vector.satisfies({"time_ms_max": 4.9})

    def test_unknown_constraint_key_raises(self):
        with pytest.raises(ValueError, match="unknown constraint"):
            CostVector().satisfies({"workspace_max": 1.0})

    def test_dict_round_trip(self):
        vector = CostVector(1.5, 2048.0, 0.125)
        assert CostVector.from_dict(vector.to_dict()) == vector


class TestParetoSorting:
    def test_pareto_front_keeps_nondominated_in_input_order(self):
        vectors = [
            CostVector(3.0, 10.0, 0.3),  # nondominated (fast trade-off axis)
            CostVector(1.0, 30.0, 0.1),  # nondominated (fastest)
            CostVector(3.5, 10.0, 0.3),  # dominated by [0]
            CostVector(2.0, 20.0, 0.2),  # nondominated (middle)
        ]
        assert _pareto_front(vectors) == [0, 1, 3]

    def test_exact_duplicate_earliest_record_wins(self):
        vectors = [CostVector(1.0, 1.0, 1.0), CostVector(1.0, 1.0, 1.0)]
        assert _pareto_front(vectors) == [0]

    def test_nsga2_fronts_peel_successively(self):
        vectors = [
            CostVector(1.0, 10.0, 0.1),
            CostVector(2.0, 20.0, 0.2),  # dominated by [0]
            CostVector(3.0, 30.0, 0.3),  # dominated by [0] and [1]
        ]
        assert _nsga2_sort(vectors) == [[0], [1], [2]]

    def test_decision_helpers_are_seed_deterministic(self):
        # Two identical vectors: every tie-break must be a seeded draw.
        vectors = [CostVector(1.0, 1.0, 1.0), CostVector(1.0, 1.0, 1.0)]
        for seed in (0, 1, 7, 1234):
            assert knee_index(vectors, seed=seed) == knee_index(vectors, seed=seed)
            assert lexicographic_index(vectors, seed=seed) == lexicographic_index(
                vectors, seed=seed
            )
            assert min_time_under_index(vectors, seed=seed) == min_time_under_index(
                vectors, seed=seed
            )

    def test_lexicographic_order_matters(self):
        fast_fat = CostVector(1.0, 100.0, 0.1)
        slow_slim = CostVector(2.0, 10.0, 0.1)
        vectors = [fast_fat, slow_slim]
        assert lexicographic_index(vectors, order=("time_ms",)) == 0
        assert lexicographic_index(vectors, order=("peak_workspace_bytes",)) == 1
        with pytest.raises(ValueError, match="unknown objective"):
            lexicographic_index(vectors, order=("speed",))

    def test_min_time_under_returns_none_when_infeasible(self):
        vectors = [CostVector(1.0, 100.0, 0.1)]
        assert min_time_under_index(vectors, {"peak_workspace_bytes_max": 50}) is None


class TestFrontier:
    @pytest.fixture(scope="class")
    def context(self, tiny_network_session, library, dt_graph, intel):
        return SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph
        )

    @pytest.fixture(scope="class")
    def frontier(self, context):
        return build_frontier(context, seed=0)

    def test_points_are_nondominated_and_time_sorted(self, frontier):
        assert len(frontier) >= 1
        vectors = [point.vector for point in frontier]
        times = [vector.time_ms for vector in vectors]
        assert times == sorted(times)
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not a.dominates(b)

    def test_min_time_point_is_the_scalar_pbqp_plan(self, context, frontier):
        """Acceptance: with no constraints, min-time == the paper's plan."""
        scalar = PBQPSelector().select(context)
        best = frontier.min_time()
        assert best.vector.time_ms == pytest.approx(scalar.total_ms)
        assert best.plan.conv_selections() == scalar.conv_selections()
        for name, decision in best.plan.layer_decisions.items():
            assert (
                decision.output_layout.name
                == scalar.layer_decisions[name].output_layout.name
            )

    def test_deterministic_and_byte_identical_serialization(self, context, frontier):
        """Acceptance: fixed seed => byte-identical frontier output."""
        again = build_frontier(context, seed=0)
        assert again.to_json() == frontier.to_json()

    def test_json_round_trip_is_byte_identical(self, frontier, dt_graph):
        import json

        loaded = Frontier.from_dict(json.loads(frontier.to_json()), dt_graph)
        assert loaded.to_json() == frontier.to_json()
        assert len(loaded) == len(frontier)
        for mine, theirs in zip(frontier, loaded):
            assert mine.vector == theirs.vector
            assert mine.plan.conv_selections() == theirs.plan.conv_selections()

    def test_save_and_load(self, frontier, dt_graph, tmp_path):
        path = tmp_path / "frontier.json"
        frontier.save(path)
        loaded = Frontier.load(path, dt_graph)
        assert loaded.to_json() == frontier.to_json()

    def test_from_dict_rejects_unknown_format(self, dt_graph):
        with pytest.raises(ValueError, match="unexpected frontier format"):
            Frontier.from_dict({"format": "something/else"}, dt_graph)
        assert FRONTIER_FORMAT == "repro/frontier/v1"

    def test_select_modes(self, frontier):
        knee = frontier.select("knee")
        assert knee["best"] in knee["pareto"]
        assert knee["decision"]["mode"] == "knee"

        lexi = frontier.select("lexicographic", order=("peak_workspace_bytes",))
        workspaces = [point.vector.peak_workspace_bytes for point in frontier]
        assert lexi["best"].vector.peak_workspace_bytes == min(workspaces)

        with pytest.raises(ValueError, match="unknown decision mode"):
            frontier.select("fastest")

    def test_min_time_under_falls_back_to_knee(self, frontier):
        impossible = {"time_ms_max": 0.0}
        assert frontier.min_time_under(impossible) is None
        result = frontier.select("min_time_under", constraints=impossible)
        assert result["decision"]["fallback_from"] == "min_time_under"
        assert result["best"] is frontier.knee()

    def test_build_validates_constraint_keys(self, context):
        with pytest.raises(ValueError, match="unknown constraint"):
            build_frontier(context, constraints={"scratch_max": 1.0})

    def test_workspace_levels_start_at_the_floor(self, context):
        levels = workspace_levels(context)
        assert levels == sorted(levels)
        assert levels[0] >= 0.0

    def test_solve_under_workspace_cap_respects_the_cap(self, context):
        for cap in workspace_levels(context):
            plan = solve_under_workspace_cap(context, cap)
            assert plan is not None
            assert plan.peak_workspace_bytes <= cap
        assert solve_under_workspace_cap(context, -1.0) is None

    def test_constraint_budget_point_lands_on_the_frontier(self, context):
        """A built-in budget always yields the best plan under it (if any)."""
        levels = workspace_levels(context)
        budget = levels[0]  # tightest feasible cap
        frontier = build_frontier(
            context, constraints={"peak_workspace_bytes_max": budget}
        )
        under = frontier.min_time_under()
        assert under is not None
        assert under.vector.peak_workspace_bytes <= budget


class TestBudgetFlips:
    """Acceptance: a tightened budget flips layers away from im2/fft on
    multiple platforms, for both AlexNet and GoogLeNet."""

    #: Two registered platforms the flip must appear on (the paper's pair).
    PLATFORM_PAIR = ("intel-haswell", "arm-cortex-a57")

    HEAVY = {"im2", "fft"}
    LIGHT = {"direct", "winograd", "kn2", "sum2d"}

    @pytest.fixture(scope="class")
    def session(self):
        from repro.api import Session

        return Session()

    @pytest.mark.parametrize("model", ["alexnet", "googlenet"])
    def test_budget_flips_heavy_families_to_light_on_both_platforms(
        self, session, model
    ):
        library = session.library
        for platform in self.PLATFORM_PAIR:
            context = session.context_for(model, platform)
            base = session.select(model, platform, strategy="pbqp").plan
            base_families = {
                layer: library.get(primitive).family.value
                for layer, primitive in base.conv_selections().items()
            }
            assert self.HEAVY & set(base_families.values()), (
                f"{model} on {platform}: unconstrained plan never uses a "
                "scratch-hungry family; the budget story has nothing to flip"
            )
            capped = solve_under_workspace_cap(
                context, 0.1 * base.peak_workspace_bytes
            )
            assert capped is not None
            assert capped.peak_workspace_bytes <= 0.1 * base.peak_workspace_bytes
            capped_families = {
                layer: library.get(primitive).family.value
                for layer, primitive in capped.conv_selections().items()
            }
            flipped = [
                layer
                for layer, family in base_families.items()
                if family in self.HEAVY and capped_families[layer] in self.LIGHT
            ]
            assert flipped, (
                f"{model} on {platform}: tightening the workspace budget "
                "flipped no layer from im2/fft to a low-scratch family"
            )


class TestMemoryBudgetExperiment:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.api import Session
        from repro.experiments.memory_budget import run_memory_budget
        from tests.conftest import build_tiny_network

        # The tiny network keeps the tier-1 suite fast; the full paper-network
        # sweep lives in benchmarks/test_bench_frontier.py.
        return run_memory_budget(
            networks=[build_tiny_network()],
            platform_names=["intel-haswell", "arm-cortex-a57"],
            fractions=(1.0, 0.25, 0.0),
            session=Session(),
        )

    def test_unconstrained_fraction_changes_nothing(self, sweep):
        for platform in sweep.platforms:
            cell = sweep.cell("tiny", platform, 1.0)
            base = sweep.baselines[("tiny", platform)]
            assert cell.feasible
            assert cell.flips == {}
            assert cell.plan.total_ms == pytest.approx(base.total_ms)

    def test_caps_bind_and_cost_time(self, sweep):
        for platform in sweep.platforms:
            base = sweep.baselines[("tiny", platform)]
            for fraction in (0.25, 0.0):
                cell = sweep.cell("tiny", platform, fraction)
                if not cell.feasible:
                    continue
                assert cell.plan.peak_workspace_bytes <= cell.cap_bytes
                assert cell.plan.total_ms >= base.total_ms - 1e-9

    def test_format_renders_rows(self, sweep):
        text = sweep.format()
        assert "Memory-budget sweep" in text
        for platform in sweep.platforms:
            assert platform in text

    def test_missing_cell_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.cell("tiny", "intel-haswell", 0.5)
