"""Batched execution: the real batch axis threaded through the whole system.

Covers the batching tentpole end to end:

* ``LayoutTensor`` round trips the ``(N, C, H, W)`` physical axis through
  every standard layout (blocked and unblocked);
* every primitive family executed on a batched scenario matches a per-image
  loop over the sum2d reference within 1e-4, including when the batched
  input arrives through a non-trivial layout-conversion chain;
* the executor runs batched forward passes that are numerically identical to
  independent single-image runs;
* ``Session.run(..., batch=n)`` matches ``n`` batch-1 runs, and the
  persistent cost store keys batch-1 and batch-n tables separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.cost.provider import AnalyticalCostProvider
from repro.cost.store import CostStore
from repro.graph.scenario import ConvScenario
from repro.layouts.layout import CHW, HWC, STANDARD_LAYOUTS
from repro.layouts.tensor import LayoutTensor
from repro.primitives.base import PrimitiveFamily
from repro.primitives.reference import reference_convolution


# ---------------------------------------------------------------------------
# LayoutTensor with a batch axis
# ---------------------------------------------------------------------------


class TestLayoutTensorBatch:
    @pytest.mark.parametrize("layout_name", sorted(STANDARD_LAYOUTS))
    def test_nchw_round_trip(self, layout_name, rng):
        layout = STANDARD_LAYOUTS[layout_name]
        x = rng.standard_normal((3, 5, 6, 7)).astype(np.float32)
        tensor = LayoutTensor.from_nchw(x, layout)
        assert tensor.batch == 3
        assert tensor.logical_shape == (5, 6, 7)
        np.testing.assert_array_equal(tensor.to_nchw(), x)

    @pytest.mark.parametrize("layout_name", sorted(STANDARD_LAYOUTS))
    def test_batched_convert_preserves_contents(self, layout_name, rng):
        layout = STANDARD_LAYOUTS[layout_name]
        x = rng.standard_normal((2, 5, 4, 6)).astype(np.float32)
        converted = LayoutTensor.from_nchw(x, CHW).convert(layout)
        assert converted.batch == 2
        np.testing.assert_allclose(converted.to_nchw(), x, rtol=0, atol=0)
        # And back again.
        np.testing.assert_allclose(converted.convert(HWC).to_nchw(), x, rtol=0, atol=0)

    def test_batched_physical_shape_has_leading_n(self):
        t = LayoutTensor.zeros((8, 4, 4), STANDARD_LAYOUTS["CHWc8"], batch=5)
        assert t.data.shape == (5, 1, 4, 4, 8)

    def test_to_chw_rejects_batched_tensor(self, rng):
        t = LayoutTensor.from_nchw(rng.standard_normal((2, 3, 4, 4)), CHW)
        with pytest.raises(ValueError, match="batched"):
            t.to_chw()

    def test_to_nchw_rejects_single_image_tensor(self, rng):
        t = LayoutTensor.from_chw(rng.standard_normal((3, 4, 4)), CHW)
        with pytest.raises(ValueError, match="not batched"):
            t.to_nchw()

    def test_from_nchw_rejects_3d(self, rng):
        with pytest.raises(ValueError, match="4D"):
            LayoutTensor.from_nchw(rng.standard_normal((3, 4, 4)), CHW)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LayoutTensor(
                data=np.zeros((2, 3, 4, 4), dtype=np.float32),
                layout=CHW,
                logical_shape=(3, 4, 4),
                batch=3,
            )


# ---------------------------------------------------------------------------
# Batched primitives against the per-image reference
# ---------------------------------------------------------------------------

#: Scenarios exercising the axes that height-folding got wrong: stride,
#: padding and grouping, plus a plain one every family supports.
BATCH_SCENARIOS = [
    ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1),
    ConvScenario(c=3, h=7, w=7, stride=2, k=3, m=8),
    ConvScenario(c=4, h=9, w=9, stride=1, k=3, m=8, padding=1, groups=2),
]


def _per_image_reference(x_nchw, kernel, scenario):
    """The oracle: a per-image loop over the textbook reference convolution."""
    return np.stack(
        [reference_convolution(x_nchw[i], kernel, scenario) for i in range(x_nchw.shape[0])]
    )


class TestBatchedPrimitives:
    @pytest.mark.parametrize("scenario", BATCH_SCENARIOS, ids=lambda s: s.describe())
    def test_every_family_matches_reference(self, library, scenario, rng):
        n = 3
        x = rng.standard_normal((n,) + scenario.input_shape).astype(np.float32)
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        expected = _per_image_reference(x, kernel, scenario)
        families_seen = set()
        for primitive in library.applicable(scenario):
            tensor = LayoutTensor.from_nchw(x, primitive.input_layout)
            out = primitive.execute(tensor, kernel, scenario.with_batch(n))
            assert out.batch == n
            np.testing.assert_allclose(
                out.to_nchw(), expected, atol=1e-4, err_msg=primitive.name
            )
            families_seen.add(primitive.family)
        assert PrimitiveFamily.SUM2D in families_seen
        assert PrimitiveFamily.DIRECT in families_seen

    def test_all_six_families_covered_somewhere(self, library):
        """The unit-stride scenario must exercise every family in the library."""
        scenario = BATCH_SCENARIOS[0]
        families = {p.family for p in library.applicable(scenario)}
        assert families == set(PrimitiveFamily)

    def test_batched_execution_through_conversion_chain(self, library, dt_graph, rng):
        """Batched input arriving through a multi-hop conversion chain.

        The input starts in the WHC stress layout, which no primitive
        consumes directly, so reaching any primitive's input layout requires
        a chain of at least one (usually several) direct transforms.
        """
        scenario = BATCH_SCENARIOS[0]
        n = 2
        x = rng.standard_normal((n,) + scenario.input_shape).astype(np.float32)
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        expected = _per_image_reference(x, kernel, scenario)
        start = STANDARD_LAYOUTS["WHC"]
        source = LayoutTensor.from_nchw(x, start)
        checked_multi_hop = 0
        for family in PrimitiveFamily:
            primitive = next(
                p for p in library.applicable(scenario) if p.family is family
            )
            path = dt_graph.shortest_path(start, primitive.input_layout, scenario.input_shape)
            assert path.reachable
            converted = path.chain.apply(source)
            out = primitive.execute(converted, kernel, scenario.with_batch(n))
            np.testing.assert_allclose(
                out.to_nchw(), expected, atol=1e-4, err_msg=primitive.name
            )
            if len(path.chain) > 1:
                checked_multi_hop += 1
        assert checked_multi_hop >= 1

    def test_batch_and_tensor_must_agree(self, library, rng):
        scenario = BATCH_SCENARIOS[0]
        primitive = next(iter(library.applicable(scenario)))
        kernel = rng.standard_normal(scenario.kernel_shape).astype(np.float32)
        batched = LayoutTensor.from_nchw(
            rng.standard_normal((2,) + scenario.input_shape).astype(np.float32),
            primitive.input_layout,
        )
        with pytest.raises(ValueError, match="batch"):
            primitive.execute(batched, kernel, scenario.with_batch(3))
        single = LayoutTensor.from_chw(
            rng.standard_normal(scenario.input_shape).astype(np.float32),
            primitive.input_layout,
        )
        with pytest.raises(ValueError, match="batch"):
            primitive.execute(single, kernel, scenario.with_batch(2))


# ---------------------------------------------------------------------------
# Batched whole-network execution
# ---------------------------------------------------------------------------


class TestBatchedExecutor:
    @pytest.fixture(scope="class")
    def session(self):
        return Session()

    def test_batched_run_matches_per_image_runs(self, tiny_network, intel):
        """A batch-4 forward pass equals four independent single-image passes."""
        session = Session()
        plan = session.plan(tiny_network, intel, batch=4)
        single_plan = session.plan(tiny_network, intel, batch=1)
        rng = np.random.default_rng(7)
        x = rng.standard_normal((4, 3, 32, 32)).astype(np.float32)

        batched_out = plan.executor(seed=0).run(x)
        assert batched_out.shape[0] == 4
        for i in range(4):
            single_out = single_plan.executor(seed=0).run(x[i])
            np.testing.assert_allclose(batched_out[i], single_out, atol=1e-4)

    def test_session_run_batched_report(self, tiny_network, intel):
        session = Session()
        report = session.run(tiny_network, intel, batch=4, seed=3)
        assert report.batch == 4
        assert report.output.shape[0] == 4
        assert report.measured_per_image_ms == pytest.approx(
            report.measured_total_ms / 4
        )
        assert "batch 4" in report.format()

    def test_execute_rejects_input_batch_mismatch(self, tiny_network, intel):
        """The report compares against batch-priced predictions, so a
        mismatched explicit input must be rejected instead of silently
        skewing every predicted-vs-measured number."""
        session = Session()
        plan16 = session.plan(tiny_network, intel, batch=16)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="batch"):
            plan16.execute(input=rng.standard_normal((3, 32, 32)).astype(np.float32))
        with pytest.raises(ValueError, match="batch"):
            plan16.execute(input=rng.standard_normal((8, 3, 32, 32)).astype(np.float32))
        plan1 = session.plan(tiny_network, intel, batch=1)
        with pytest.raises(ValueError, match="batch"):
            plan1.execute(input=rng.standard_normal((4, 3, 32, 32)).astype(np.float32))

    def test_trace_accounts_conversions_per_image(self, tiny_network, intel):
        session = Session()
        plan = session.plan(tiny_network, intel, batch=2)
        x = np.random.default_rng(0).standard_normal((2, 3, 32, 32)).astype(np.float32)
        _, trace = plan.executor(seed=0).run_traced(x)
        assert trace.batch == 2
        per_image = trace.conversion_seconds_per_image
        assert set(per_image) == set(trace.conversion_seconds)
        for edge, seconds in per_image.items():
            assert seconds == pytest.approx(trace.conversion_seconds[edge] / 2)

    def test_acceptance_alexnet_style_batch4_equivalence(self, intel):
        """The issue's acceptance check on the tiny zoo-free network."""
        session = Session()
        report4 = session.run("alexnet", intel, batch=4, seed=1)
        plan1 = session.plan("alexnet", intel, batch=1)
        x = (
            np.random.default_rng(1)
            .standard_normal((4,) + plan1.input_shape())
            .astype(np.float32)
        )
        batched = session.plan("alexnet", intel, batch=4).executor(seed=1).run(x)
        for i in range(4):
            single = plan1.executor(seed=1).run(x[i])
            np.testing.assert_allclose(batched[i], single, atol=1e-4)
        assert report4.batch == 4


# ---------------------------------------------------------------------------
# Batched selection, caching and persistence
# ---------------------------------------------------------------------------


class TestBatchedSelection:
    def test_contexts_keyed_by_batch(self, tiny_network, intel):
        session = Session()
        session.select(tiny_network, intel, batch=1)
        session.select(tiny_network, intel, batch=4)
        assert session.cache_info().contexts == 2
        session.select(tiny_network, intel, batch=4)
        assert session.cache_info().hits == 1

    def test_batched_plan_costs_scale_with_batch(self, tiny_network, intel):
        session = Session()
        one = session.select(tiny_network, intel, batch=1)
        sixteen = session.select(tiny_network, intel, batch=16)
        assert sixteen.plan.batch == 16
        # Work grows with the batch, but amortized setup keeps it under 16x.
        assert sixteen.total_ms > one.total_ms
        assert sixteen.total_ms < 16.0 * one.total_ms
        assert sixteen.per_image_ms <= one.per_image_ms

    def test_store_keys_batches_separately(self, tiny_network, intel, tmp_path):
        session = Session(cache_dir=tmp_path)
        store = session.store
        assert store is not None
        session.select(tiny_network, intel, batch=1)
        session.select(tiny_network, intel, batch=4)
        entries = store.entries()
        assert len(entries) == 2
        assert sorted(entry.key.batch for entry in entries) == [1, 4]
        paths = {entry.path for entry in entries}
        assert len(paths) == 2

        # A fresh process (new session) over the same directory hits both.
        warm = Session(cache_dir=tmp_path)
        warm.select(tiny_network, intel, batch=1)
        warm.select(tiny_network, intel, batch=4)
        stats = warm.store.stats()
        assert stats.hits == 2 and stats.misses == 0

    def test_batched_tables_round_trip_scenario_batch(self, tiny_network, intel, tmp_path):
        session = Session(cache_dir=tmp_path)
        context = session.context_for(tiny_network, intel, batch=4)
        assert context.batch == 4
        assert all(s.batch == 4 for s in context.tables.scenarios.values())
        # Reload from disk: the batch survives serialization.
        warm = Session(cache_dir=tmp_path)
        reloaded = warm.context_for(tiny_network, intel, batch=4)
        assert reloaded.tables.batch == 4
        assert all(s.batch == 4 for s in reloaded.tables.scenarios.values())

    def test_plan_serialization_keeps_batch(self, tiny_network, intel, tmp_path):
        session = Session()
        plan = session.plan(tiny_network, intel, batch=8)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = session.plan_from_file(path, network=tiny_network)
        assert loaded.network_plan.batch == 8
        assert loaded.result.batch == 8

    def test_select_many_groups_by_batch(self, tiny_network, intel):
        session = Session()
        results = session.select_many(
            [
                (tiny_network, intel, "pbqp", 1, 1),
                (tiny_network, intel, "pbqp", 1, 4),
                (tiny_network, intel, "sum2d", 1, 4),
            ]
        )
        assert [result.batch for result in results] == [1, 4, 4]
        # Two distinct contexts (batch 1 and batch 4), three selections.
        assert session.cache_info().contexts == 2

    def test_compare_at_batch(self, tiny_network, intel):
        session = Session()
        report = session.compare(tiny_network, intel, batch=4)
        assert report.batch == 4
        assert all(result.batch == 4 for result in report.results)
        assert report.baseline.batch == 4
        assert "batch 4" in report.format()


# ---------------------------------------------------------------------------
# CostStore.clear()/stats() fixes
# ---------------------------------------------------------------------------


class TestCostStoreHygiene:
    def _populated_store(self, tiny_network, intel, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.select(tiny_network, intel)
        return session.store

    def test_clear_removes_unparseable_and_old_format_files(
        self, tiny_network, intel, tmp_path
    ):
        store = self._populated_store(tiny_network, intel, tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json")
        (tmp_path / "old-format.json").write_text('{"format": "repro/cost-store-entry/v0"}')
        (tmp_path / ".leftover-123.tmp").write_text("torn write")
        assert len(store.entries()) == 1  # entries() still only lists well-formed ones
        removed = store.clear()
        assert removed == 3  # the real entry plus both stale .json files
        assert list(tmp_path.glob("*.json")) == []
        assert list(tmp_path.glob(".*.tmp")) == []
        assert store.clear() == 0

    def test_stats_counts_files_without_parsing(self, tiny_network, intel, tmp_path):
        store = self._populated_store(tiny_network, intel, tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json")
        stats = store.stats()
        assert stats.entries == 2  # file count, not parsed-entry count
        assert stats.misses == 1

    def test_cache_clear_reports_every_file(self, tiny_network, intel, tmp_path):
        """The CLI path: 'repro cache --clear' after a format bump is not a no-op."""
        from repro.cli import main

        store = self._populated_store(tiny_network, intel, tmp_path)
        # Simulate a format bump: rewrite the entry under an old format tag.
        (entry,) = store.entries()
        entry.path.write_text('{"format": "repro/cost-store-entry/v0"}')
        assert store.entries() == []  # the old behaviour counted these as zero
        exit_code = main(["cache", "--cache-dir", str(tmp_path), "--clear"])
        assert exit_code == 0
        assert list(tmp_path.glob("*.json")) == []


# ---------------------------------------------------------------------------
# Cost-model batch behaviour
# ---------------------------------------------------------------------------


class TestBatchedCosts:
    def test_costs_scale_sublinearly_but_monotonically(self, library, intel_cost_model):
        scenario = ConvScenario(c=8, h=14, w=14, stride=1, k=3, m=16, padding=1)
        for primitive in library.applicable(scenario):
            one = intel_cost_model.primitive_cost(primitive, scenario)
            sixteen = intel_cost_model.primitive_cost(primitive, scenario.with_batch(16))
            assert sixteen > one, primitive.name
            assert sixteen <= 16.0 * one * (1 + 1e-9), primitive.name

    def test_batch_amortizes_overhead_heavy_families(self, library, intel_cost_model):
        """Per-image FFT cost must drop with the batch (kernel spectra amortize)."""
        scenario = ConvScenario(c=8, h=14, w=14, stride=1, k=3, m=16, padding=1)
        fft = next(
            p for p in library.applicable(scenario) if p.family is PrimitiveFamily.FFT
        )
        one = intel_cost_model.primitive_cost(fft, scenario)
        per_image_64 = intel_cost_model.primitive_cost(fft, scenario.with_batch(64)) / 64
        assert per_image_64 < one

    def test_transform_cost_scales_with_batch(self, intel_cost_model, dt_graph):
        transform = dt_graph.transforms[0]
        shape = (16, 28, 28)
        one = intel_cost_model.transform_cost(transform, shape)
        eight = intel_cost_model.transform_cost(transform, shape, batch=8)
        assert eight > one
        # One batched call amortizes the fixed dispatch cost.
        assert eight < 8.0 * one

    def test_cost_query_batch_reaches_tables(self, tiny_network, intel):
        provider = AnalyticalCostProvider()
        session = Session(provider=provider)
        tables = session.context_for(tiny_network, intel, batch=4).tables
        assert tables.batch == 4

    def test_store_clear_then_recount(self, tiny_network, intel, tmp_path):
        store = CostStore(tmp_path)
        session = Session(provider=store)
        session.select(tiny_network, intel, batch=1)
        session.select(tiny_network, intel, batch=4)
        assert store.stats().entries == 2
        assert store.clear() == 2
        assert store.stats().entries == 0
