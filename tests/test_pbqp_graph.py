"""Tests for the PBQP graph representation."""

import numpy as np
import pytest

from repro.pbqp.graph import PBQPGraph, PBQPNode


class TestNodes:
    def test_add_node_assigns_ids(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0, 2.0], name="a")
        b = graph.add_node([3.0])
        assert a != b
        assert graph.num_nodes == 2
        assert graph.node(a).name == "a"
        assert graph.node(b).degree_of_freedom == 1

    def test_empty_cost_vector_rejected(self):
        graph = PBQPGraph()
        with pytest.raises(ValueError):
            graph.add_node([])

    def test_labels_must_match_costs(self):
        with pytest.raises(ValueError):
            PBQPNode(node_id=0, name="x", costs=np.array([1.0, 2.0]), labels=("a",))

    def test_label_of(self):
        graph = PBQPGraph()
        n = graph.add_node([1.0, 2.0], labels=["fast", "slow"])
        assert graph.node(n).label_of(0) == "fast"
        unlabeled = graph.add_node([1.0, 2.0])
        assert graph.node(unlabeled).label_of(1) == "1"

    def test_remove_node_removes_incident_edges(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0, 2.0])
        b = graph.add_node([1.0, 2.0])
        graph.add_edge(a, b, [[0.0, 1.0], [1.0, 0.0]])
        graph.remove_node(a)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0
        assert graph.degree(b) == 0


class TestEdges:
    def test_edge_shape_validated(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0, 2.0])
        b = graph.add_node([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            graph.add_edge(a, b, [[0.0, 1.0], [1.0, 0.0]])

    def test_edge_requires_existing_nodes(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0])
        with pytest.raises(KeyError):
            graph.add_edge(a, 99, [[0.0]])

    def test_self_edge_rejected(self):
        graph = PBQPGraph()
        a = graph.add_node([1.0, 2.0])
        with pytest.raises(ValueError):
            graph.add_edge(a, a, [[0.0, 0.0], [0.0, 0.0]])

    def test_edge_matrix_orientation(self):
        graph = PBQPGraph()
        a = graph.add_node([0.0, 0.0])
        b = graph.add_node([0.0, 0.0, 0.0])
        matrix = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        graph.add_edge(a, b, matrix)
        np.testing.assert_allclose(graph.edge_matrix(a, b), matrix)
        np.testing.assert_allclose(graph.edge_matrix(b, a), np.transpose(matrix))

    def test_parallel_edges_accumulate(self):
        graph = PBQPGraph()
        a = graph.add_node([0.0, 0.0])
        b = graph.add_node([0.0, 0.0])
        graph.add_edge(a, b, [[1.0, 0.0], [0.0, 1.0]])
        graph.add_edge(b, a, [[2.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(graph.edge_matrix(a, b), [[3.0, 0.0], [0.0, 3.0]])
        assert graph.num_edges == 1

    def test_neighbors_and_degree(self):
        graph = PBQPGraph()
        a, b, c = (graph.add_node([0.0, 1.0]) for _ in range(3))
        graph.add_edge(a, b, np.zeros((2, 2)))
        graph.add_edge(a, c, np.zeros((2, 2)))
        assert graph.neighbors(a) == [b, c]
        assert graph.degree(a) == 2
        assert graph.degree(b) == 1

    def test_remove_edge(self):
        graph = PBQPGraph()
        a = graph.add_node([0.0])
        b = graph.add_node([0.0])
        graph.add_edge(a, b, [[1.0]])
        graph.remove_edge(b, a)
        assert graph.num_edges == 0
        with pytest.raises(KeyError):
            graph.remove_edge(a, b)


class TestEvaluation:
    def build_example(self):
        graph = PBQPGraph()
        a = graph.add_node([8.0, 6.0, 10.0], name="conv1")
        b = graph.add_node([17.0, 19.0, 14.0], name="conv2")
        graph.add_edge(a, b, [[0.0, 3.0, 5.0], [6.0, 0.0, 5.0], [1.0, 5.0, 0.0]])
        return graph, a, b

    def test_solution_cost(self):
        graph, a, b = self.build_example()
        assert graph.solution_cost({a: 1, b: 1}) == pytest.approx(6 + 19 + 0)
        assert graph.solution_cost({a: 0, b: 2}) == pytest.approx(8 + 14 + 5)

    def test_solution_cost_requires_full_assignment(self):
        graph, a, _ = self.build_example()
        with pytest.raises(ValueError):
            graph.solution_cost({a: 0})

    def test_copy_is_deep(self):
        graph, a, b = self.build_example()
        clone = graph.copy()
        clone.node(a).costs[0] = 99.0
        clone.remove_edge(a, b)
        assert graph.node(a).costs[0] == 8.0
        assert graph.num_edges == 1
        assert clone.num_edges == 0

    def test_infinite_costs_supported(self):
        graph = PBQPGraph()
        a = graph.add_node([float("inf"), 1.0])
        b = graph.add_node([1.0, 1.0])
        graph.add_edge(a, b, [[0.0, float("inf")], [0.0, 0.0]])
        assert graph.solution_cost({a: 0, b: 0}) == float("inf")
        assert graph.solution_cost({a: 1, b: 1}) == pytest.approx(2.0)
