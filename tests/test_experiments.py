"""Tests of the experiment harnesses and of the paper's headline claims.

These are the repository's "does the reproduction reproduce?" tests: each of
the qualitative claims of the evaluation section is asserted against the
analytical platform model.
"""


import pytest

from repro.cost.platform import PLATFORMS
from repro.experiments.ablation import dt_cost_ablation, solver_mode_ablation
from repro.experiments.family_traits import PROBE_SCENARIOS, family_traits_table
from repro.experiments.overhead import format_overhead_report, solver_overhead_report
from repro.experiments.pbqp_example import figure2_example
from repro.experiments.selections import alexnet_selection_comparison
from repro.experiments.tables import format_absolute_table, run_absolute_time_table
from repro.experiments.whole_network import format_speedup_table, run_whole_network


@pytest.fixture(scope="module")
def intel_platform():
    return PLATFORMS["intel-haswell"]


@pytest.fixture(scope="module")
def arm_platform():
    return PLATFORMS["arm-cortex-a57"]


@pytest.fixture(scope="module")
def alexnet_intel_st(intel_platform, library):
    return run_whole_network("alexnet", intel_platform, threads=1, library=library)


@pytest.fixture(scope="module")
def googlenet_arm_st(arm_platform, library):
    return run_whole_network("googlenet", arm_platform, threads=1, library=library)


class TestFigure2Example:
    def test_node_only_solution_is_per_node_minimum(self):
        result = figure2_example()
        assert result.node_only_cost == pytest.approx(37.0)
        assert result.node_only_selection == {"conv1": "B", "conv2": "C", "conv3": "B"}

    def test_edge_costs_solution_is_optimal_and_verified(self):
        result = figure2_example()
        assert result.with_edges_cost == pytest.approx(result.brute_force_cost)
        assert result.with_edges.optimal

    def test_edge_costs_increase_total(self):
        result = figure2_example()
        assert result.with_edges_cost >= result.node_only_cost


class TestWholeNetworkHarness(object):
    def test_result_structure(self, alexnet_intel_st):
        assert alexnet_intel_st.baseline_ms > 0
        speedups = alexnet_intel_st.speedups()
        for strategy in ("direct", "im2", "kn2", "winograd", "fft", "local_optimal", "pbqp"):
            assert strategy in speedups
        assert "mkldnn" in speedups and "armcl" not in speedups

    def test_arm_uses_armcl_instead_of_mkldnn(self, googlenet_arm_st):
        assert "armcl" in googlenet_arm_st.times_ms
        assert "mkldnn" not in googlenet_arm_st.times_ms

    def test_pbqp_is_best_strategy(self, alexnet_intel_st, googlenet_arm_st):
        assert alexnet_intel_st.best_strategy() == "pbqp"
        assert googlenet_arm_st.best_strategy() == "pbqp"

    def test_pbqp_beats_local_optimal_and_vendor(self, alexnet_intel_st):
        speedups = alexnet_intel_st.speedups()
        assert speedups["pbqp"] > speedups["local_optimal"]
        assert speedups["pbqp"] > speedups["mkldnn"]
        assert speedups["pbqp"] > speedups["caffe"]

    def test_every_strategy_at_least_matches_nothing_strange(self, alexnet_intel_st):
        for strategy, milliseconds in alexnet_intel_st.times_ms.items():
            assert milliseconds > 0, strategy

    def test_caffe_slower_than_sum2d_for_googlenet_on_arm(self, googlenet_arm_st):
        """Table 3: Caffe's GoogLeNet time exceeds even the SUM2D baseline on the A57."""
        assert googlenet_arm_st.speedup("caffe") < 1.0

    def test_format_speedup_table(self, alexnet_intel_st):
        text = format_speedup_table([alexnet_intel_st], title="figure 5")
        assert "figure 5" in text and "alexnet" in text and "pbqp" in text


class TestHeadlineClaims:
    def test_winograd_family_wins_vgg_but_not_alexnet(self, intel_platform, library):
        """Section 5.8: Winograd excels on VGG (all K=3) but is poor for AlexNet/GoogLeNet."""
        vgg = run_whole_network("vgg-b", intel_platform, threads=1, library=library)
        alexnet = run_whole_network("alexnet", intel_platform, threads=1, library=library)
        assert vgg.speedup("winograd") == pytest.approx(vgg.speedup("pbqp"), rel=0.15)
        assert alexnet.speedup("winograd") < 0.6 * alexnet.speedup("pbqp")

    def test_pbqp_outperforms_mkldnn_multithreaded_on_vgg(self, intel_platform, library):
        """Figure 6: the PBQP solution outperforms the vendor library by ~2x on VGG MT."""
        result = run_whole_network("vgg-b", intel_platform, threads=4, library=library)
        assert result.speedup("pbqp") > 1.5 * result.speedup("mkldnn")

    def test_alexnet_selections_match_figure4_structure(self, library):
        comparison = alexnet_selection_comparison(threads=4, library=library)
        intel_sel = comparison.selections["intel-haswell"]
        arm_sel = comparison.selections["arm-cortex-a57"]
        # conv1 (K=11, stride 4) is an im2-family primitive on both platforms.
        assert intel_sel["conv1"].startswith("im2")
        assert arm_sel["conv1"].startswith("im2")
        # The remaining convolutions are Winograd-family on both platforms.
        for layer in ("conv2", "conv3", "conv4", "conv5"):
            assert "winograd" in intel_sel[layer]
            assert "winograd" in arm_sel[layer]
        # Intel selections use 8-wide variants, ARM selections 4-wide variants.
        assert all("vf8" in intel_sel[layer] for layer in ("conv2", "conv3", "conv4", "conv5"))
        assert all("vf4" in arm_sel[layer] for layer in ("conv2", "conv3", "conv4", "conv5"))
        # The ARM selection prefers the low-memory 1D form for most layers.
        one_d = sum("winograd_1d" in arm_sel[layer] for layer in ("conv2", "conv3", "conv4", "conv5"))
        assert one_d >= 2
        assert all(
            "winograd_2d" in intel_sel[layer] for layer in ("conv2", "conv3", "conv4", "conv5")
        )

    def test_solver_overhead_below_one_second_and_optimal(self, library):
        """Section 5.4: each network solves in well under a second, provably optimally."""
        entries = solver_overhead_report(
            networks=["alexnet", "vgg-b", "googlenet"], library=library
        )
        for entry in entries:
            assert entry.solve_seconds < 1.0
            assert entry.optimal
        text = format_overhead_report(entries)
        assert "googlenet" in text

    def test_absolute_time_table_ordering(self, intel_platform, library):
        """Tables 2/3: SUM2D > L.OPT > PBQP for every network and thread count."""
        rows = run_absolute_time_table(intel_platform, networks=["alexnet"], library=library)
        for row in rows:
            assert row.times_ms["SUM2D"] > row.times_ms["L.OPT"] > row.times_ms["PBQP"]
        text = format_absolute_table(rows, title="Table 2")
        assert "(S) alexnet" in text and "(M) alexnet" in text


class TestFamilyTraits:
    @pytest.fixture(scope="class")
    def traits(self, library):
        return family_traits_table(library=library)

    def test_every_probe_scenario_evaluated(self, traits):
        assert set(traits.best_cost) == set(PROBE_SCENARIOS)

    def test_strided_unsupported_by_kn2_winograd_fft(self, traits):
        for family_name in ("kn2", "winograd", "fft"):
            assert traits.best_cost["strided"][family_name] is None
        assert traits.best_cost["strided"]["im2"] is not None

    def test_winograd_fastest_on_k3(self, traits):
        assert traits.fastest_family("k3_mid") == "winograd"

    def test_im2_struggles_on_large_images_relative_to_kn2(self, traits):
        """Table 1: 'large image' is im2's bad case; kn2's low memory wins there."""
        assert traits.best_cost["large_image"]["kn2"] < traits.best_cost["large_image"]["im2"]

    def test_kn2_low_memory(self, traits):
        assert traits.workspace["k3_mid"]["kn2"] < traits.workspace["k3_mid"]["im2"]

    def test_fft_relatively_better_on_k5_than_on_pointwise(self, traits):
        """Table 1: FFT's bad case is a small kernel."""
        k5 = traits.best_cost["k5_layer"]
        pointwise = traits.best_cost["pointwise"]
        fft_vs_best_k5 = k5["fft"] / min(v for v in k5.values() if v is not None)
        fft_vs_best_1x1 = pointwise["fft"] / min(v for v in pointwise.values() if v is not None)
        assert fft_vs_best_k5 < fft_vs_best_1x1

    def test_format(self, traits):
        assert "unsupported" in traits.format()


class TestAblations:
    def test_dt_cost_ablation_scales(self, library, intel_platform):
        points = dt_cost_ablation(
            model_name="alexnet", platform=intel_platform, scales=(0.0, 1.0, 4.0), library=library
        )
        assert [p.scale for p in points] == [0.0, 1.0, 4.0]
        # With free conversions, greedy per-layer selection matches PBQP.
        assert points[0].pbqp_advantage_over_greedy == pytest.approx(1.0, rel=1e-6)
        # PBQP never loses to either alternative at any scale.
        for point in points:
            assert point.pbqp_advantage_over_greedy >= 1.0 - 1e-9
            assert point.pbqp_advantage_over_local >= 1.0 - 1e-9
        # The advantage over DT-blind greedy grows with the conversion cost.
        assert points[-1].pbqp_advantage_over_greedy >= points[0].pbqp_advantage_over_greedy

    def test_solver_mode_ablation(self, library, intel_platform):
        results = solver_mode_ablation(
            networks=["alexnet"], platform=intel_platform, library=library
        )
        (result,) = results
        assert result.exact_provably_optimal
        assert result.heuristic_cost >= result.exact_cost - 1e-12
        assert result.heuristic_gap >= 0.0


class TestPlatformScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.api import Session
        from repro.experiments.platform_scaling import run_platform_scaling
        from tests.conftest import build_tiny_network

        # The tiny network keeps the tier-1 suite fast; the full zoo sweep
        # lives in benchmarks/test_bench_platform_zoo.py.
        return run_platform_scaling(
            networks=[build_tiny_network()], batches=(1, 4), session=Session()
        )

    def test_sweep_covers_every_registered_platform(self, sweep):
        from repro.cost.platform import list_platforms

        assert sweep.platforms == list_platforms()
        assert len(sweep.cells) == len(sweep.platforms) * 2  # two batches

    def test_cells_carry_valid_plans_and_families(self, sweep):
        families = {"sum2d", "direct", "im2", "kn2", "winograd", "fft"}
        for cell in sweep.cells:
            assert cell.total_ms > 0
            assert cell.per_image_ms == pytest.approx(cell.total_ms / cell.batch)
            assert cell.families and set(cell.families.values()) <= families
            assert sum(cell.family_histogram().values()) == len(cell.families)

    def test_drift_is_measured_against_both_cpu_baselines(self, sweep):
        for platform in ("avx512-server", "gpu-sim"):
            drifted = sweep.drift_layers("tiny", platform, 1)
            for layer, (family, baselines) in drifted.items():
                assert set(baselines) == {"intel-haswell", "arm-cortex-a57"}
                assert all(family != other for other in baselines.values())
            assert sweep.drift_count("tiny", platform, 1) == len(drifted)

    def test_format_renders_every_platform_row(self, sweep):
        text = sweep.format()
        for platform in sweep.platforms:
            assert platform in text
        assert "drift" in text

    def test_missing_cell_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.cell("tiny", "gpu-sim", 999)
