"""Project lint layer: each rule on synthetic sources, plus src/ cleanliness."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import lint_file, lint_source, run_lint
from repro.analysis.passes import PASSES, register_pass, registered_passes

SRC = Path(__file__).resolve().parents[1] / "src"


def rules_of(findings):
    return {finding.rule for finding in findings}


def render(findings):
    return "\n".join(finding.render() for finding in findings)


def lint(source, path):
    return lint_source(textwrap.dedent(source), path)


# ---------------------------------------------------------------------------
# LT200 — syntax errors become findings, not crashes


def test_syntax_error_is_lt200():
    findings = lint("def broken(:\n", "src/repro/broken.py")
    assert rules_of(findings) == {"LT200"}
    assert findings[0].severity == "error"


# ---------------------------------------------------------------------------
# LT201 — registry mutation outside register_* functions


def test_registry_mutation_at_module_level_is_flagged():
    report = lint(
        """
        from repro.cost.platform import PLATFORMS

        PLATFORMS["rogue"] = object()
        """,
        "src/repro/rogue.py",
    )
    assert "LT201" in rules_of(report)


def test_registry_mutation_inside_register_function_is_allowed():
    report = lint(
        """
        from repro.cost.platform import PLATFORMS

        def register_custom(name, platform):
            PLATFORMS[name] = platform

        def unregister_custom(name):
            PLATFORMS.pop(name, None)
        """,
        "src/repro/ok.py",
    )
    assert not report, render(report)


def test_registry_mutator_method_call_is_flagged():
    report = lint(
        """
        from repro.core.strategies import STRATEGIES

        def sneaky():
            STRATEGIES.update(other)
        """,
        "src/repro/sneaky.py",
    )
    assert "LT201" in rules_of(report)


# ---------------------------------------------------------------------------
# LT202 — unseeded randomness in multiobj/


def test_unseeded_random_in_multiobj_is_flagged():
    source = """
    import random

    def jitter():
        return random.random()
    """
    report = lint(source, "src/repro/multiobj/sampler.py")
    assert "LT202" in rules_of(report)
    # The same source outside multiobj/ is not this rule's business.
    assert not lint(source, "src/repro/cost/sampler.py")


def test_seeded_random_in_multiobj_is_allowed():
    report = lint(
        """
        import random

        def generator(seed):
            return random.Random(seed)
        """,
        "src/repro/multiobj/sampler.py",
    )
    assert not report, render(report)


def test_argless_random_constructor_is_flagged():
    report = lint(
        """
        import random

        rng = random.Random()
        """,
        "src/repro/multiobj/sampler.py",
    )
    assert "LT202" in rules_of(report)


# ---------------------------------------------------------------------------
# LT203 — serialization without sort_keys


def test_unsorted_dumps_on_serialization_path_is_flagged():
    source = """
    import json

    def save(document):
        return json.dumps(document, indent=2)
    """
    report = lint(source, "src/repro/cost/serialize.py")
    assert "LT203" in rules_of(report)
    # Non-serialization modules may order keys however they like.
    assert not lint(source, "src/repro/cli.py")


def test_sorted_dumps_is_allowed():
    report = lint(
        """
        import json

        def save(document):
            return json.dumps(document, indent=2, sort_keys=True)
        """,
        "src/repro/cost/serialize.py",
    )
    assert not report, render(report)


# ---------------------------------------------------------------------------
# LT204 — lock discipline in api.py / service/


LOCKED_CLASS = """
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def drop(self, key):
        %s
"""


def test_unlocked_mutation_of_guarded_attribute_is_flagged():
    source = LOCKED_CLASS % "self._items.pop(key, None)"
    report = lint(source, "src/repro/service/cache.py")
    assert "LT204" in rules_of(report)
    # The identical class outside api.py / service/ is out of scope.
    assert not lint(source, "src/repro/cost/cache.py")


def test_locked_mutation_everywhere_is_clean():
    source = LOCKED_CLASS % (
        "with self._lock:\n            self._items.pop(key, None)"
    )
    report = lint(source, "src/repro/service/cache.py")
    assert not report, render(report)


# ---------------------------------------------------------------------------
# noqa suppression


def test_noqa_suppresses_named_rule():
    report = lint(
        """
        from repro.cost.platform import PLATFORMS

        PLATFORMS["rogue"] = object()  # noqa: LT201
        """,
        "src/repro/rogue.py",
    )
    assert not report, render(report)


def test_noqa_with_other_rule_does_not_suppress():
    report = lint(
        """
        from repro.cost.platform import PLATFORMS

        PLATFORMS["rogue"] = object()  # noqa: LT999
        """,
        "src/repro/rogue.py",
    )
    assert "LT201" in rules_of(report)


def test_bare_noqa_suppresses_everything():
    report = lint(
        """
        from repro.cost.platform import PLATFORMS

        PLATFORMS["rogue"] = object()  # noqa
        """,
        "src/repro/rogue.py",
    )
    assert not report, render(report)


# ---------------------------------------------------------------------------
# the project itself is lint-clean


def test_src_tree_is_lint_clean():
    report = run_lint([SRC])
    assert report.ok, report.to_json()
    assert not report.findings, report.to_json()


def test_lint_file_reads_real_modules(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("from repro.models import MODEL_BUILDERS\nMODEL_BUILDERS.clear()\n")
    report = lint_file(path)
    assert "LT201" in rules_of(report)


# ---------------------------------------------------------------------------
# pass registry


def test_registered_passes_cover_plan_and_source_kinds():
    names = set(registered_passes())
    assert {"plan-fields", "plan-costs", "plan-fanout", "lint-registry-mutation"} <= names
    kinds = {kind for p in PASSES.values() for kind in p.kinds}
    assert {"plan", "tables", "source"} <= kinds


def test_duplicate_pass_registration_is_rejected():
    assert "plan-fields" in PASSES
    with pytest.raises(ValueError, match="plan-fields"):

        @register_pass("plan-fields", kinds=("plan",))
        def shadow(context):  # pragma: no cover - never runs
            return []
