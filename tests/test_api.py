"""Tests for the strategy registry and the cached-selection Engine API."""

import json

import pytest

import repro.cost.provider as provider_module
from repro.api import (
    Engine,
    SelectionRequest,
    SelectionResult,
    network_fingerprint,
)
from repro.core.strategies import (
    STRATEGIES,
    Strategy,
    applicable_strategies,
    figure_strategy_names,
    get_strategy,
    register_strategy,
    registered_names,
)
from repro.experiments.whole_network import FIGURE_STRATEGIES
from repro.models import build_model

ALL_STRATEGY_NAMES = {
    "sum2d",
    "direct",
    "im2",
    "kn2",
    "winograd",
    "fft",
    "local_optimal",
    "pbqp",
    "greedy_ignore_dt",
    "mkldnn",
    "armcl",
    "caffe",
    "cudnn",
}


@pytest.fixture
def engine(library, dt_graph):
    return Engine(library=library, dt_graph=dt_graph)


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(STRATEGIES) == ALL_STRATEGY_NAMES
        assert registered_names() == list(STRATEGIES)

    def test_figure_strategies_are_a_registry_view(self):
        assert FIGURE_STRATEGIES == figure_strategy_names()
        assert set(FIGURE_STRATEGIES) <= set(STRATEGIES)
        # The paper's bar order.
        assert FIGURE_STRATEGIES == [
            "direct",
            "im2",
            "kn2",
            "winograd",
            "fft",
            "local_optimal",
            "pbqp",
            "mkldnn",
            "armcl",
            "caffe",
            "cudnn",
        ]

    def test_get_strategy_unknown_name(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("resnet-magic")

    def test_register_rejects_duplicates_and_anonymous(self):
        with pytest.raises(ValueError, match="duplicate strategy name"):

            @register_strategy
            class Duplicate(Strategy):
                name = "pbqp"

        with pytest.raises(ValueError, match="non-empty name"):

            @register_strategy
            class Anonymous(Strategy):
                pass

    def test_figure_strategies_view_is_live(self):
        import repro.experiments
        import repro.experiments.whole_network as whole_network

        @register_strategy
        class LateBar(Strategy):
            name = "test_late_bar"
            figure_order = 99

            def build_plan(self, context):
                return get_strategy("sum2d").build_plan(context)

        try:
            # A strategy registered after import still gains a figure bar.
            assert whole_network.FIGURE_STRATEGIES[-1] == "test_late_bar"
            assert repro.experiments.FIGURE_STRATEGIES[-1] == "test_late_bar"
        finally:
            del STRATEGIES["test_late_bar"]
        assert "test_late_bar" not in whole_network.FIGURE_STRATEGIES

    def test_custom_strategy_registers_and_unregisters(self, engine):
        @register_strategy
        class AlwaysSum2d(Strategy):
            name = "test_always_sum2d"

            def build_plan(self, context):
                return get_strategy("sum2d").build_plan(context)

        try:
            result = engine.select("alexnet", "intel-haswell", strategy="test_always_sum2d")
            assert set(result.plan.conv_selections().values()) == {"sum2d"}
        finally:
            del STRATEGIES["test_always_sum2d"]


class TestAppliesToGating:
    def test_mkldnn_only_on_wide_simd(self, engine):
        intel = engine.context_for("alexnet", "intel-haswell")
        arm = engine.context_for("alexnet", "arm-cortex-a57")
        assert get_strategy("mkldnn").applies_to(intel)
        assert not get_strategy("mkldnn").applies_to(arm)
        assert get_strategy("armcl").applies_to(arm)
        assert not get_strategy("armcl").applies_to(intel)
        assert get_strategy("caffe").applies_to(intel)
        assert get_strategy("caffe").applies_to(arm)

    def test_applicable_strategies_per_platform(self, engine):
        intel = engine.context_for("alexnet", "intel-haswell")
        arm = engine.context_for("alexnet", "arm-cortex-a57")
        intel_names = {s.name for s in applicable_strategies(intel)}
        arm_names = {s.name for s in applicable_strategies(arm)}
        assert "mkldnn" in intel_names and "armcl" not in intel_names
        assert "armcl" in arm_names and "mkldnn" not in arm_names

    def test_include_frameworks_false_drops_all_emulations(self, engine):
        intel = engine.context_for("alexnet", "intel-haswell")
        names = {s.name for s in applicable_strategies(intel, include_frameworks=False)}
        assert names == ALL_STRATEGY_NAMES - {"mkldnn", "armcl", "caffe", "cudnn"}

    def test_select_rejects_inapplicable_strategy(self, engine):
        with pytest.raises(ValueError, match="does not apply"):
            engine.select("alexnet", "arm-cortex-a57", strategy="mkldnn")


class TestEngineCache:
    def test_second_select_reuses_context(self, engine, monkeypatch):
        builds = []
        original = provider_module.build_cost_tables

        def counting_build(*args, **kwargs):
            builds.append(kwargs.get("threads"))
            return original(*args, **kwargs)

        # Profiling flows through the cost-provider layer since the Session
        # redesign; count it there.
        monkeypatch.setattr(provider_module, "build_cost_tables", counting_build)

        first = engine.select("alexnet", "intel-haswell", strategy="pbqp")
        built_once = len(builds)
        second = engine.select("alexnet", "intel-haswell", strategy="pbqp")
        assert built_once == 1
        assert len(builds) == built_once  # no re-profiling on the warm call
        assert not first.from_cache and second.from_cache
        info = engine.cache_info()
        assert info.misses == 1 and info.hits == 1 and info.contexts == 1
        assert first.plan.conv_selections() == second.plan.conv_selections()

    def test_context_identity_and_key_separation(self, engine):
        a = engine.context_for("alexnet", "intel-haswell", threads=1)
        b = engine.context_for("alexnet", "intel-haswell", threads=1)
        assert a is b
        assert engine.context_for("alexnet", "intel-haswell", threads=4) is not a
        assert engine.context_for("alexnet", "arm-cortex-a57", threads=1) is not a
        assert engine.cache_info().contexts == 3

    def test_compare_profiles_once(self, engine):
        results = engine.compare("alexnet", "intel-haswell")
        assert engine.cache_info().misses == 1
        names = [r.strategy for r in results]
        assert names == [s.name for s in applicable_strategies(
            engine.context_for("alexnet", "intel-haswell")
        )]
        assert all(r.from_cache for r in results[1:])
        by_name = {r.strategy: r for r in results}
        pbqp, sum2d = by_name["pbqp"], by_name["sum2d"]
        assert pbqp.speedup_over(sum2d) > 1.0
        assert min(by_name.values(), key=lambda r: r.total_ms).strategy == "pbqp"

    def test_select_many_batches_over_combos(self, engine):
        requests = [
            SelectionRequest("alexnet", "intel-haswell", "pbqp", 1),
            SelectionRequest("alexnet", "intel-haswell", "local_optimal", 1),
            ("alexnet", "arm-cortex-a57", "pbqp", 1),
        ]
        results = engine.select_many(requests)
        assert [r.strategy for r in results] == ["pbqp", "local_optimal", "pbqp"]
        assert [r.platform for r in results] == [
            "intel-haswell",
            "intel-haswell",
            "arm-cortex-a57",
        ]
        # Two distinct (model, platform, threads) keys, one reuse.
        info = engine.cache_info()
        assert info.misses == 2 and info.hits == 1

    def test_clear_cache(self, engine):
        engine.select("alexnet", "intel-haswell")
        engine.clear_cache()
        info = engine.cache_info()
        assert info.contexts == 0 and info.hits == 0 and info.misses == 0

    def test_network_object_fingerprint_hits_cache(self, engine):
        first = build_model("alexnet")
        second = build_model("alexnet")
        assert first is not second
        assert network_fingerprint(first) == network_fingerprint(second)
        engine.select(first, "intel-haswell")
        result = engine.select(second, "intel-haswell")
        assert result.from_cache
        assert engine.cache_info().contexts == 1

    def test_structurally_different_networks_do_not_collide(self, engine):
        from repro.graph.layer import ConvLayer, InputLayer
        from repro.graph.network import Network

        def tiny(kernel):
            net = Network("probe")
            net.add_layer(InputLayer("data", shape=(3, 16, 16)))
            net.add_layer(
                ConvLayer("conv", out_channels=4, kernel=kernel, padding=kernel // 2),
                ["data"],
            )
            net.validate()
            return net

        assert network_fingerprint(tiny(3)) != network_fingerprint(tiny(5))


class TestSelectionResultSerialization:
    def test_round_trip_via_serialize(self, engine, dt_graph):
        result = engine.select("alexnet", "intel-haswell", strategy="pbqp")
        document = json.loads(json.dumps(result.to_dict()))
        assert document["format"] == "repro/selection-result/v1"
        loaded = SelectionResult.from_dict(document, dt_graph)
        assert loaded.model == "alexnet"
        assert loaded.platform == "intel-haswell"
        assert loaded.strategy == "pbqp"
        assert loaded.plan.conv_selections() == result.plan.conv_selections()
        assert loaded.plan.total_cost == pytest.approx(result.plan.total_cost)
        assert loaded.total_ms == pytest.approx(result.total_ms)

    def test_wrong_format_rejected(self, dt_graph):
        with pytest.raises(ValueError, match="selection-result format"):
            SelectionResult.from_dict({"format": "nope"}, dt_graph)


class TestRewiredHarnesses:
    def test_run_whole_network_covers_registry(self, library, intel):
        from repro.experiments.whole_network import run_whole_network

        result = run_whole_network("alexnet", intel, threads=1, library=library)
        # Every applicable non-baseline registered strategy gets a bar
        # (armcl is NEON-only, cudnn SIMT-only — neither applies on Haswell).
        assert set(result.times_ms) == ALL_STRATEGY_NAMES - {"sum2d", "armcl", "cudnn"}

    def test_cli_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "strategies:" in out
        for name in ALL_STRATEGY_NAMES:
            assert name in out

    def test_cli_select_with_strategy_flag(self, capsys):
        from repro.cli import main

        assert main(["select", "alexnet", "--strategy", "local_optimal"]) == 0
        out = capsys.readouterr().out
        # No solver stats for a non-PBQP strategy — and no crash formatting them.
        assert "speedup over single-threaded SUM2D baseline" in out
        assert "solver" not in out

    def test_cli_select_rejects_gated_strategy(self, capsys):
        from repro.cli import main

        code = main(
            ["select", "alexnet", "--platform", "arm-cortex-a57", "--strategy", "mkldnn"]
        )
        assert code == 2
        assert "does not apply" in capsys.readouterr().err
