"""Property-style cost-model invariants, enforced on every registered platform.

These are the structural guarantees the selection machinery leans on; each is
checked against *every* platform in the registry, so a newly registered
backend that violates one fails here instead of producing silently absurd
selections:

* per-image primitive cost is non-increasing in the batch (fixed per-call
  setup amortizes; nothing gets more expensive per image);
* primitive cost is monotone in the arithmetic volume for a fixed variant
  (more MACs never price cheaper);
* layout-transformation cost scales with the tensor bytes moved (monotone in
  the shape, batch-sublinear due to the fixed dispatch);
* ``supports()`` is consistent with pricing — cost tables never price a
  variant the platform declines, and price every variant it offers;
* replaying a plan selected on one platform onto another never beats the
  target platform's own PBQP re-selection (PBQP optimality over the target's
  tables).

The session fixture honours ``REPRO_PLATFORM_CACHE`` (a cost-store directory)
so the CI platform-grid job can persist tables between runs.
"""

import os

import pytest

from repro.api import Session
from repro.core.selector import PBQPSelector
from repro.cost.analytical import AnalyticalCostModel
from repro.cost.platform import PLATFORMS, list_platforms
from repro.experiments.batch_scaling import replay_plan
from repro.graph.scenario import ConvScenario
from repro.layouts.transforms import default_transform_library
from tests.conftest import build_tiny_network

#: Snapshot of the built-in zoo at collection time (tests registering
#: throwaway platforms elsewhere must clean up after themselves).
ALL_PLATFORMS = list_platforms()

#: Scenario shapes exercising the interesting regimes: small/large channel
#: counts, strided, 5x5 and depthwise.
SCENARIOS = [
    ConvScenario(c=16, h=28, w=28, stride=1, k=3, m=32, padding=1),
    ConvScenario(c=64, h=14, w=14, stride=1, k=3, m=64, padding=1),
    ConvScenario(c=8, h=56, w=56, stride=2, k=5, m=16, padding=2),
    ConvScenario(c=32, h=28, w=28, stride=1, k=3, m=32, padding=1, groups=32),
]


@pytest.fixture(scope="module", params=ALL_PLATFORMS)
def platform(request):
    return PLATFORMS[request.param]


@pytest.fixture(scope="module")
def cost_model(platform):
    return AnalyticalCostModel(platform)


@pytest.fixture(scope="module")
def session():
    """A session shared by the cross-platform tests.

    ``REPRO_PLATFORM_CACHE`` (set by the CI platform-grid job) points it at a
    persistent cost store, so warm CI runs skip table building entirely.
    """
    return Session(cache_dir=os.environ.get("REPRO_PLATFORM_CACHE") or None)


def applicable(library, scenario, platform):
    primitives = library.applicable(scenario, platform=platform)
    assert primitives, f"no primitive supports [{scenario.describe()}] on {platform}"
    return primitives


class TestPrimitiveCostInvariants:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.describe())
    def test_per_image_cost_non_increasing_in_batch(
        self, library, platform, cost_model, scenario
    ):
        for primitive in applicable(library, scenario, platform):
            previous = cost_model.primitive_cost(primitive, scenario)
            for batch in (2, 4, 16):
                per_image = (
                    cost_model.primitive_cost(primitive, scenario.with_batch(batch))
                    / batch
                )
                assert per_image <= previous * (1 + 1e-9), (
                    f"{primitive.name} on {platform}: batch {batch} per-image "
                    f"cost {per_image} exceeds smaller-batch cost {previous}"
                )
                previous = per_image

    def test_cost_monotone_in_macs_for_fixed_variant(
        self, library, platform, cost_model
    ):
        base = dict(c=16, h=28, w=28, stride=1, k=3, padding=1)
        scenarios = [ConvScenario(m=m, **base) for m in (4, 8, 16, 32, 64)]
        for primitive in applicable(library, scenarios[0], platform):
            costs = [
                cost_model.primitive_cost(primitive, scenario)
                for scenario in scenarios
                if primitive.supports(scenario, platform=platform)
            ]
            for cheaper, dearer in zip(costs, costs[1:]):
                assert dearer >= cheaper * (1 - 1e-9), (
                    f"{primitive.name} on {platform}: more MACs priced cheaper "
                    f"({dearer} < {cheaper})"
                )

    def test_costs_positive_and_finite(self, library, platform, cost_model):
        import math

        for scenario in SCENARIOS:
            for primitive in applicable(library, scenario, platform):
                cost = cost_model.primitive_cost(primitive, scenario)
                assert math.isfinite(cost) and cost > 0


class TestTransformCostInvariants:
    def test_cost_scales_with_tensor_bytes(self, platform, cost_model):
        for transform in default_transform_library():
            small = cost_model.transform_cost(transform, (8, 16, 16))
            doubled_c = cost_model.transform_cost(transform, (16, 16, 16))
            doubled_hw = cost_model.transform_cost(transform, (8, 32, 16))
            assert doubled_c > small and doubled_hw > small

    def test_batch_scales_traffic_not_dispatch(self, platform, cost_model):
        transform = default_transform_library()[0]
        shape = (16, 28, 28)
        one = cost_model.transform_cost(transform, shape, batch=1)
        for batch in (2, 8, 32):
            batched = cost_model.transform_cost(transform, shape, batch=batch)
            # More images cost more, but the per-call dispatch is paid once,
            # so the total stays strictly below batch * single-image cost.
            assert one < batched < batch * one


class TestSupportsPricingConsistency:
    def test_tables_price_exactly_the_supported_variants(
        self, library, platform, session
    ):
        context = session.context_for(build_tiny_network(), platform.name)
        for layer, scenario in context.tables.scenarios.items():
            priced = set(context.tables.node_costs[layer])
            supported = {
                p.name for p in library.applicable(scenario, platform=platform)
            }
            assert priced == supported, (
                f"{layer} on {platform}: priced {sorted(priced - supported)} "
                f"unsupported / missing {sorted(supported - priced)}"
            )

    def test_execute_rejects_declined_scenarios(self, library, platform):
        # Declining is platform-sided: the numpy implementation itself still
        # computes everything it structurally can, so capability declines
        # must come from supports(scenario, platform), which is what pricing
        # uses.  Spot-check that a declined (variant, platform) pair is
        # genuinely absent from that platform's applicable set.
        scenario = SCENARIOS[0]
        for primitive in library:
            if primitive.supports(scenario) and not primitive.supports(
                scenario, platform=platform
            ):
                assert primitive not in library.applicable(
                    scenario, platform=platform
                )


class TestCrossPlatformReplay:
    def test_replay_never_beats_native_reselection(self, session):
        """A plan tuned for platform A, re-priced on B, never beats B's own PBQP."""
        network = build_tiny_network()
        contexts = {
            name: session.context_for(network, name) for name in ALL_PLATFORMS
        }
        native = {
            name: PBQPSelector().select(context)
            for name, context in contexts.items()
        }
        replays = 0
        for source in ALL_PLATFORMS:
            for target in ALL_PLATFORMS:
                if source == target:
                    continue
                try:
                    replayed = replay_plan(
                        contexts[target], native[source], strategy="replay"
                    )
                except KeyError:
                    # The source plan uses a variant the target platform
                    # declines (e.g. 1D Winograd on the SIMT part): the
                    # replay is impossible, which trivially cannot beat
                    # native re-selection.
                    continue
                replays += 1
                assert replayed.total_cost >= native[target].total_cost * (1 - 1e-9), (
                    f"replaying {source} plan on {target} beat native selection"
                )
        assert replays > 0
