"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.analytical import AnalyticalCostModel
from repro.cost.platform import PLATFORMS
from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network
from repro.graph.scenario import ConvScenario
from repro.layouts.dt_graph import DTGraph
from repro.layouts.layout import STANDARD_LAYOUTS
from repro.layouts.transforms import default_transform_library
from repro.primitives.registry import default_primitive_library


@pytest.fixture(scope="session")
def library():
    """The full primitive library (built once per test session)."""
    return default_primitive_library()


@pytest.fixture(scope="session")
def dt_graph():
    """The standard DT graph over the standard layouts."""
    return DTGraph(STANDARD_LAYOUTS.values(), default_transform_library())


@pytest.fixture(scope="session")
def intel():
    return PLATFORMS["intel-haswell"]


@pytest.fixture(scope="session")
def arm():
    return PLATFORMS["arm-cortex-a57"]


@pytest.fixture(scope="session")
def intel_cost_model(intel):
    return AnalyticalCostModel(intel)


@pytest.fixture(scope="session")
def arm_cost_model(arm):
    return AnalyticalCostModel(arm)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_scenario():
    """A small unit-stride K=3 scenario most primitives support."""
    return ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1)


def build_tiny_network() -> Network:
    """A small but structurally rich network: stride, 1x1, branches, groups, FC."""
    net = Network("tiny")
    net.add_layer(InputLayer("data", shape=(3, 32, 32)))
    net.add_layer(ConvLayer("conv1", out_channels=8, kernel=5, stride=2, padding=2), ["data"])
    net.add_layer(ReLULayer("relu1"), ["conv1"])
    net.add_layer(PoolLayer("pool1", kernel=3, stride=2), ["relu1"])
    net.add_layer(ConvLayer("branch1", out_channels=8, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("branch2_reduce", out_channels=4, kernel=1), ["pool1"])
    net.add_layer(ConvLayer("branch2", out_channels=8, kernel=3, padding=1), ["branch2_reduce"])
    net.add_layer(PoolLayer("branch3_pool", kernel=3, stride=1, padding=1), ["pool1"])
    net.add_layer(ConvLayer("branch3", out_channels=4, kernel=1), ["branch3_pool"])
    net.add_layer(ConcatLayer("concat"), ["branch1", "branch2", "branch3"])
    net.add_layer(LRNLayer("norm"), ["concat"])
    net.add_layer(
        ConvLayer("conv2", out_channels=16, kernel=3, padding=1, groups=2), ["norm"]
    )
    net.add_layer(FlattenLayer("flatten"), ["conv2"])
    net.add_layer(FullyConnectedLayer("fc", out_features=10), ["flatten"])
    net.add_layer(SoftmaxLayer("prob"), ["fc"])
    net.validate()
    return net


@pytest.fixture
def tiny_network():
    """A fresh copy of the tiny branching network."""
    return build_tiny_network()


@pytest.fixture(scope="session")
def tiny_network_session():
    """A session-scoped copy of the tiny network for read-only tests."""
    return build_tiny_network()
