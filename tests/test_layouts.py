"""Tests for layouts and layout tensors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts.layout import (
    CHW,
    CHW4c,
    CHW8c,
    HCW,
    HWC,
    HWC8c,
    WHC,
    STANDARD_LAYOUTS,
    Layout,
    get_layout,
    make_layout,
)
from repro.layouts.tensor import LayoutTensor


class TestLayout:
    def test_standard_layouts_registered(self):
        assert set(STANDARD_LAYOUTS) == {
            "CHW",
            "HWC",
            "HCW",
            "WHC",
            "CHWc4",
            "CHWc8",
            "HWCc4",
            "HWCc8",
        }

    def test_get_layout_roundtrip(self):
        for name, layout in STANDARD_LAYOUTS.items():
            assert get_layout(name) is layout

    def test_get_layout_unknown_raises(self):
        with pytest.raises(KeyError):
            get_layout("NHWC")

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Layout(name="bad", order=("C", "C", "W"))

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            Layout(name="bad", order=("C", "H", "W"), channel_block=0)

    def test_axis_position(self):
        assert CHW.axis_position("C") == 0
        assert HWC.axis_position("C") == 2
        assert HCW.axis_position("C") == 1

    def test_physical_shape_permutation(self):
        assert CHW.physical_shape(3, 5, 7) == (3, 5, 7)
        assert HWC.physical_shape(3, 5, 7) == (5, 7, 3)
        assert WHC.physical_shape(3, 5, 7) == (7, 5, 3)

    def test_physical_shape_blocked_pads_channels(self):
        # 5 channels with block 4 -> 2 blocks of 4.
        assert CHW4c.physical_shape(5, 6, 7) == (2, 6, 7, 4)
        assert CHW8c.physical_shape(8, 6, 7) == (1, 6, 7, 8)
        assert HWC8c.physical_shape(9, 2, 3) == (2, 3, 2, 8)

    def test_physical_shape_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CHW.physical_shape(0, 4, 4)

    def test_element_count_includes_padding(self):
        assert CHW.element_count(5, 6, 7) == 5 * 6 * 7
        assert CHW4c.element_count(5, 6, 7) == 8 * 6 * 7

    def test_is_blocked(self):
        assert not CHW.is_blocked
        assert CHW8c.is_blocked

    def test_make_layout_names(self):
        assert make_layout(("C", "H", "W")).name == "CHW"
        assert make_layout(("H", "W", "C"), channel_block=4).name == "HWCc4"

    def test_layouts_hashable_and_equal_by_value(self):
        assert make_layout(("C", "H", "W")) == CHW
        assert len({CHW, HWC, CHW}) == 2


class TestLayoutTensor:
    @pytest.mark.parametrize("layout", list(STANDARD_LAYOUTS.values()), ids=lambda l: l.name)
    def test_roundtrip_all_layouts(self, layout, rng):
        x = rng.standard_normal((5, 7, 9)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, layout)
        assert tensor.data.shape == layout.physical_shape(5, 7, 9)
        np.testing.assert_allclose(tensor.to_chw(), x)

    def test_from_chw_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            LayoutTensor.from_chw(rng.standard_normal((4, 4)), CHW)

    def test_constructor_validates_physical_shape(self, rng):
        bad = rng.standard_normal((3, 4, 5)).astype(np.float32)
        with pytest.raises(ValueError):
            LayoutTensor(data=bad, layout=HWC, logical_shape=(3, 4, 5))

    def test_zeros(self):
        tensor = LayoutTensor.zeros((3, 4, 5), CHW8c)
        assert tensor.data.shape == (1, 4, 5, 8)
        assert tensor.to_chw().shape == (3, 4, 5)
        assert np.count_nonzero(tensor.data) == 0

    def test_convert_between_layouts(self, rng):
        x = rng.standard_normal((6, 8, 10)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, CHW)
        converted = tensor.convert(HWC8c)
        assert converted.layout == HWC8c
        np.testing.assert_allclose(converted.to_chw(), x)

    def test_convert_same_layout_copies(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, HWC)
        copy = tensor.convert(HWC)
        assert copy.data is not tensor.data
        np.testing.assert_allclose(copy.to_chw(), x)

    def test_properties(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, HCW)
        assert tensor.channels == 2
        assert tensor.height == 3
        assert tensor.width == 4
        assert tensor.dtype == np.float32

    def test_allclose(self, rng):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        a = LayoutTensor.from_chw(x, CHW)
        b = LayoutTensor.from_chw(x, HWC8c)
        assert a.allclose(b)
        c = LayoutTensor.from_chw(x + 1.0, CHW)
        assert not a.allclose(c)

    def test_allclose_shape_mismatch(self, rng):
        a = LayoutTensor.from_chw(rng.standard_normal((2, 3, 4)).astype(np.float32), CHW)
        b = LayoutTensor.from_chw(rng.standard_normal((2, 3, 5)).astype(np.float32), CHW)
        assert not a.allclose(b)

    def test_blocked_padding_is_zero(self, rng):
        x = rng.standard_normal((3, 2, 2)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, CHW8c)
        # Channels 3..7 of the single block must be zero padding.
        block = tensor.data[0]  # (H, W, 8)
        assert np.count_nonzero(block[:, :, 3:]) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        c=st.integers(min_value=1, max_value=12),
        h=st.integers(min_value=1, max_value=10),
        w=st.integers(min_value=1, max_value=10),
        layout_name=st.sampled_from(sorted(STANDARD_LAYOUTS)),
    )
    def test_roundtrip_property(self, c, h, w, layout_name):
        """Converting to any layout and back preserves the logical tensor."""
        layout = STANDARD_LAYOUTS[layout_name]
        rng = np.random.default_rng(c * 1000 + h * 100 + w)
        x = rng.standard_normal((c, h, w)).astype(np.float32)
        np.testing.assert_allclose(LayoutTensor.from_chw(x, layout).to_chw(), x)

    @settings(max_examples=20, deadline=None)
    @given(
        source=st.sampled_from(sorted(STANDARD_LAYOUTS)),
        target=st.sampled_from(sorted(STANDARD_LAYOUTS)),
    )
    def test_convert_property(self, source, target):
        """Conversion between any pair of layouts preserves the logical tensor."""
        rng = np.random.default_rng(hash((source, target)) % (2**32))
        x = rng.standard_normal((5, 6, 7)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, STANDARD_LAYOUTS[source])
        converted = tensor.convert(STANDARD_LAYOUTS[target])
        np.testing.assert_allclose(converted.to_chw(), x)
