"""Tests for direct layout transformations and transform chains."""

import numpy as np
import pytest

from repro.layouts.layout import CHW, CHW8c, HCW, HWC, WHC
from repro.layouts.tensor import LayoutTensor
from repro.layouts.transforms import (
    LayoutTransform,
    TransformChain,
    default_transform_library,
    identity_chain,
    transforms_by_pair,
)


class TestLayoutTransform:
    def test_apply_converts_layout(self, rng):
        transform = LayoutTransform(source=CHW, target=HWC)
        x = rng.standard_normal((4, 5, 6)).astype(np.float32)
        result = transform.apply(LayoutTensor.from_chw(x, CHW))
        assert result.layout == HWC
        np.testing.assert_allclose(result.to_chw(), x)

    def test_apply_rejects_wrong_source_layout(self, rng):
        transform = LayoutTransform(source=CHW, target=HWC)
        tensor = LayoutTensor.from_chw(rng.standard_normal((2, 3, 4)).astype(np.float32), HWC)
        with pytest.raises(ValueError):
            transform.apply(tensor)

    def test_element_traffic_counts_reads_and_writes(self):
        transform = LayoutTransform(source=CHW, target=HWC, efficiency=1.0)
        assert transform.element_traffic(2, 3, 4) == pytest.approx(2 * 2 * 3 * 4)

    def test_element_traffic_counts_block_padding(self):
        transform = LayoutTransform(source=CHW, target=CHW8c, efficiency=1.0)
        # 3 channels pad to 8 in the blocked target.
        assert transform.element_traffic(3, 2, 2) == pytest.approx(3 * 4 + 8 * 4)

    def test_efficiency_scales_traffic(self):
        fast = LayoutTransform(source=CHW, target=HWC, efficiency=2.0)
        slow = LayoutTransform(source=CHW, target=HWC, efficiency=0.5)
        assert fast.element_traffic(4, 4, 4) < slow.element_traffic(4, 4, 4)

    def test_name(self):
        assert LayoutTransform(source=CHW, target=HWC).name == "CHW->HWC"


class TestTransformChain:
    def test_chain_applies_in_order(self, rng):
        chain = TransformChain(
            transforms=(
                LayoutTransform(source=CHW, target=HWC),
                LayoutTransform(source=HWC, target=WHC),
            )
        )
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        result = chain.apply(LayoutTensor.from_chw(x, CHW))
        assert result.layout == WHC
        np.testing.assert_allclose(result.to_chw(), x)
        assert chain.source == CHW
        assert chain.target == WHC
        assert len(chain) == 2
        assert chain.name == "CHW->HWC->WHC"

    def test_disconnected_chain_rejected(self):
        with pytest.raises(ValueError):
            TransformChain(
                transforms=(
                    LayoutTransform(source=CHW, target=HWC),
                    LayoutTransform(source=CHW, target=HCW),
                )
            )

    def test_chain_traffic_is_sum_of_hops(self):
        first = LayoutTransform(source=CHW, target=HWC)
        second = LayoutTransform(source=HWC, target=WHC)
        chain = TransformChain(transforms=(first, second))
        assert chain.element_traffic(2, 3, 4) == pytest.approx(
            first.element_traffic(2, 3, 4) + second.element_traffic(2, 3, 4)
        )

    def test_identity_chain(self, rng):
        chain = identity_chain()
        assert len(chain) == 0
        x = rng.standard_normal((2, 2, 2)).astype(np.float32)
        tensor = LayoutTensor.from_chw(x, HCW)
        assert chain.apply(tensor) is tensor
        assert chain.element_traffic(2, 2, 2) == 0


class TestDefaultLibrary:
    def test_every_transform_is_between_standard_layouts(self):
        from repro.layouts.layout import STANDARD_LAYOUTS

        for transform in default_transform_library():
            assert transform.source.name in STANDARD_LAYOUTS
            assert transform.target.name in STANDARD_LAYOUTS

    def test_library_is_deliberately_incomplete(self):
        """Not every ordered pair has a direct routine (chains are required)."""
        pairs = {(t.source.name, t.target.name) for t in default_transform_library()}
        assert ("CHWc8", "HWCc8") not in pairs
        assert ("CHW", "WHC") not in pairs

    def test_blocking_transforms_present_both_ways(self):
        pairs = {(t.source.name, t.target.name) for t in default_transform_library()}
        assert ("CHW", "CHWc8") in pairs
        assert ("CHWc8", "CHW") in pairs

    def test_transforms_by_pair_index(self):
        index = transforms_by_pair(default_transform_library())
        assert index[("CHW", "HWC")].target == HWC

    def test_transforms_by_pair_rejects_duplicates(self):
        duplicate = [
            LayoutTransform(source=CHW, target=HWC),
            LayoutTransform(source=CHW, target=HWC, efficiency=0.5),
        ]
        with pytest.raises(ValueError):
            transforms_by_pair(duplicate)

    def test_all_default_transforms_execute_correctly(self, rng):
        x = rng.standard_normal((5, 6, 7)).astype(np.float32)
        for transform in default_transform_library():
            tensor = LayoutTensor.from_chw(x, transform.source)
            result = transform.apply(tensor)
            assert result.layout == transform.target
            np.testing.assert_allclose(result.to_chw(), x)
