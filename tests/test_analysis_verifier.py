"""Static plan verifier: mutation corpus, canonical-grid cleanliness, fan-out.

The mutation corpus programmatically corrupts one field class of a canonical
serialized plan per case — decision primitives, layout hops, dtype tokens,
cost-vector components, format versions, join layouts — and asserts the
verifier flags every corruption with the expected rule code.  The canonical
grid asserts the dual: freshly planned zoo plans across platforms and dtypes
produce *zero* error findings — and, since the fan-out-aware encoding, zero
RV140 double-pricing warnings too (the detector stays as a regression
tripwire, separately exercised on a hand-corrupted document).
"""

from __future__ import annotations

import copy
import json
import random
import re

import pytest

from repro.analysis.plan_verifier import (
    KNOWN_FORMATS,
    PlanVerificationError,
    detect_kind,
    raise_for_report,
    verify_document,
)
from repro.api import Session
from repro.cost.serialize import cost_tables_to_dict, plan_to_dict
from repro.service.app import build_plan_document

#: Seed for every choice the corpus makes, so failures reproduce exactly.
CORPUS_SEED = 1234

CANONICAL = (
    [("alexnet", platform, "fp32") for platform in
     ("intel-haswell", "arm-cortex-a57", "avx512-server", "gpu-sim")]
    + [("alexnet", "intel-haswell", dtype) for dtype in ("fp16", "int8")]
    + [(model, platform, dtype)
       for model in ("resnet18", "mobilenet_v1")
       for platform in ("intel-haswell", "arm-cortex-a57")
       for dtype in ("fp32", "int8")]
)


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def alexnet_doc(session):
    return plan_to_dict(session.plan("alexnet", "intel-haswell").network_plan)


@pytest.fixture(scope="module")
def alexnet_int8_doc(session):
    return plan_to_dict(
        session.plan("alexnet", "intel-haswell", dtype="int8").network_plan
    )


@pytest.fixture(scope="module")
def resnet_doc(session):
    return plan_to_dict(session.plan("resnet18", "intel-haswell").network_plan)


def rules_of(report):
    return {finding.rule for finding in report.findings}


# ---------------------------------------------------------------------------
# canonical grid: zero false positives


@pytest.mark.parametrize("model,platform,dtype", CANONICAL)
def test_canonical_plans_verify_clean(session, model, platform, dtype):
    doc = plan_to_dict(session.plan(model, platform, dtype=dtype).network_plan)
    report = verify_document(doc, source=f"{model}/{platform}/{dtype}")
    assert report.ok, report.summary() + "\n" + report.to_json()
    assert not report.errors


def test_canonical_tables_verify_clean(session):
    context = session.context_for("alexnet", "intel-haswell", 1, 1, "fp32")
    report = verify_document(cost_tables_to_dict(context.tables))
    assert report.ok and not report.findings, report.to_json()


# ---------------------------------------------------------------------------
# mutation corpus


def _conv_entries(doc):
    return [entry for entry in doc["layers"] if entry["primitive"]]


def _converting_edges(doc):
    return [edge for edge in doc["edges"] if edge["hops"]]


def mutate_format(doc, rng):
    doc["format"] = "repro/plan/v0"


def mutate_platform(doc, rng):
    doc["platform"] = "gone-platform"


def mutate_dtype(doc, rng):
    doc["dtype"] = "int4"


def mutate_threads(doc, rng):
    doc["threads"] = 0


def mutate_primitive_unknown(doc, rng):
    rng.choice(_conv_entries(doc))["primitive"] = "conv_quantum9000"


def mutate_hop_not_an_edge(doc, rng):
    edge = rng.choice(_converting_edges(doc))
    # X -> X is never a registered direct transform.
    edge["hops"] = [edge["hops"][0], edge["hops"][0]]


def mutate_chain_endpoints(doc, rng):
    edge = rng.choice(_converting_edges(doc))
    edge["source_layout"] = edge["target_layout"]


def mutate_layer_missing(doc, rng):
    doc["layers"].pop(rng.randrange(len(doc["layers"])))


def mutate_cost_component(doc, rng):
    doc["cost_vector"]["time_ms"] *= 1.5


def mutate_total_ms(doc, rng):
    doc["total_ms"] += 1.0


MUTATIONS = [
    ("format-token", mutate_format, "RV100"),
    ("unregistered-platform", mutate_platform, "RV101"),
    ("unknown-dtype", mutate_dtype, "RV102"),
    ("nonpositive-threads", mutate_threads, "RV103"),
    ("unknown-primitive", mutate_primitive_unknown, "RV110"),
    ("hop-not-an-edge", mutate_hop_not_an_edge, "RV121"),
    ("chain-endpoint-contradiction", mutate_chain_endpoints, "RV122"),
    ("missing-layer", mutate_layer_missing, "RV113"),
    ("cost-vector-component", mutate_cost_component, "RV130"),
    ("total-ms-drift", mutate_total_ms, "RV131"),
]


@pytest.mark.parametrize(
    "name,mutate,rule", MUTATIONS, ids=[name for name, _, _ in MUTATIONS]
)
def test_mutation_is_flagged_with_expected_rule(alexnet_doc, name, mutate, rule):
    doc = copy.deepcopy(alexnet_doc)
    mutate(doc, random.Random(CORPUS_SEED))
    report = verify_document(doc, source=name)
    assert not report.ok, f"{name}: verifier missed the corruption"
    assert rule in rules_of(report), (
        f"{name}: expected {rule}, got {sorted(rules_of(report))}\n{report.to_json()}"
    )


def test_unsupported_primitive_on_int8_plan(alexnet_int8_doc):
    """FFT declines int8; grafting it onto an int8 plan must raise RV111."""
    doc = copy.deepcopy(alexnet_int8_doc)
    entry = random.Random(CORPUS_SEED).choice(_conv_entries(doc))
    entry["primitive"] = "fft_2d_chw_vf1"
    entry["input_layout"] = "CHW"
    entry["output_layout"] = "CHW"
    report = verify_document(doc)
    assert "RV111" in rules_of(report), report.to_json()


def test_join_layout_mismatch_on_resnet(resnet_doc):
    doc = copy.deepcopy(resnet_doc)
    inbound = {}
    for edge in doc["edges"]:
        inbound.setdefault(edge["consumer"], []).append(edge)
    joins = [edges for edges in inbound.values() if len(edges) >= 2]
    assert joins, "resnet18 must have join layers"
    edge = random.Random(CORPUS_SEED).choice(joins)[0]
    edge["target_layout"] = "CHW" if edge["target_layout"] != "CHW" else "HWC"
    report = verify_document(doc)
    assert "RV120" in rules_of(report), report.to_json()


def test_every_mutation_raises_through_raise_for_report(alexnet_doc):
    doc = copy.deepcopy(alexnet_doc)
    mutate_cost_component(doc, random.Random(CORPUS_SEED))
    report = verify_document(doc)
    with pytest.raises(PlanVerificationError) as excinfo:
        raise_for_report(report)
    assert excinfo.value.report is report
    assert "RV130" in str(excinfo.value)


# ---------------------------------------------------------------------------
# fan-out double-pricing detector (regression tripwire)


def test_fanout_detector_silent_on_fresh_resnet18(resnet_doc):
    """Fan-out-aware encoding: fresh plans price shared chains exactly once."""
    report = verify_document(resnet_doc)
    fanout = [f for f in report.findings if f.rule == "RV140"]
    assert not fanout, [f.message for f in fanout]
    assert report.ok


def test_fanout_detector_fires_on_double_priced_document(resnet_doc):
    """RV140 still trips when a shared chain is priced on more than one edge.

    Fresh plans attribute each (producer, target layout) chain to one edge
    and zero the duplicates; re-inflating a zeroed duplicate reproduces the
    pre-fix double pricing.  The recomputed totals (RV130/RV131) charge the
    group's max, so only the tripwire — not the cost recomputation — fires.
    """
    doc = copy.deepcopy(resnet_doc)
    groups = {}
    for edge in doc["edges"]:
        if edge["hops"]:
            key = (edge["producer"], edge["target_layout"])
            groups.setdefault(key, []).append(edge)
    shared = next(edges for edges in groups.values() if len(edges) >= 2)
    carrier = max(shared, key=lambda edge: edge["cost"])
    duplicate = next(edge for edge in shared if edge is not carrier)
    assert duplicate["cost"] == 0.0
    duplicate["cost"] = carrier["cost"]

    report = verify_document(doc)
    fanout = [f for f in report.findings if f.rule == "RV140"]
    assert fanout, report.to_json()
    assert all(f.severity == "warning" for f in fanout)
    assert report.ok  # warnings never invalidate a plan
    producer = carrier["producer"]
    hits = [f for f in fanout if producer in f.message or producer in f.location]
    assert hits, [f.message for f in fanout]
    match = re.search(r"double-priced by ([0-9.]+) ms", hits[0].message)
    assert match, hits[0].message
    assert float(match.group(1)) > 0.0


# ---------------------------------------------------------------------------
# other document kinds


def test_tables_mutations(session):
    context = session.context_for("alexnet", "intel-haswell", 1, 1, "fp32")
    doc = cost_tables_to_dict(context.tables)

    bad = copy.deepcopy(doc)
    bad["dtype"] = "bf16"
    assert "RV102" in rules_of(verify_document(bad))

    bad = copy.deepcopy(doc)
    layer_costs = next(iter(bad["node_costs"].values()))
    layer_costs["conv_quantum9000"] = 1.0
    assert "RV110" in rules_of(verify_document(bad))


def test_store_entry_roundtrip_and_mutations(tmp_path, session):
    cached = Session(cache_dir=tmp_path)
    cached.plan("alexnet", "intel-haswell")
    paths = sorted(tmp_path.glob("*/*.json"))
    assert paths, "cost store wrote no entries"
    doc = json.loads(paths[0].read_text())
    report = verify_document(doc, source=str(paths[0]))
    assert report.ok, report.to_json()

    bad = copy.deepcopy(doc)
    bad["key"]["dtype"] = "int8" if bad["key"]["dtype"] != "int8" else "fp32"
    assert "RV150" in rules_of(verify_document(bad))

    # Unregistered platforms in store entries are a warning, not an error:
    # CostStore.evict deliberately keeps entries for platforms that were
    # unregistered after profiling.
    bad = copy.deepcopy(doc)
    bad["key"]["platform"] = "gone-platform"
    report = verify_document(bad)
    assert report.ok
    assert "RV101" in rules_of(report)

    bad = copy.deepcopy(doc)
    bad["key"]["platform_version"] = "0:deadbeef"
    report = verify_document(bad)
    assert report.ok
    assert "RV152" in rules_of(report)


def test_frontier_envelope_mutation(session):
    frontier = session.plan_frontier(
        "alexnet", "intel-haswell", budget_steps=2, dtypes=("fp32",)
    )
    doc = frontier.to_dict()
    assert verify_document(doc).ok

    bad = copy.deepcopy(doc)
    bad["points"][0]["vector"]["time_ms"] *= 2.0
    assert "RV153" in rules_of(verify_document(bad))


def test_result_envelope_mutation(session):
    doc = session.select("alexnet", "intel-haswell").to_dict()
    assert verify_document(doc).ok

    bad = copy.deepcopy(doc)
    bad["threads"] = 4
    assert "RV153" in rules_of(verify_document(bad))


def test_service_plan_envelope_mutation(session):
    doc = build_plan_document(session, "alexnet", "intel-haswell")
    assert verify_document(doc).ok

    bad = copy.deepcopy(doc)
    bad["total_ms"] += 1.0
    assert "RV153" in rules_of(verify_document(bad))


# ---------------------------------------------------------------------------
# report mechanics


def test_detect_kind_covers_every_known_format(alexnet_doc):
    assert detect_kind(alexnet_doc) == "plan"
    assert set(KNOWN_FORMATS.values()) == {
        "plan", "tables", "frontier", "store-entry", "result", "service-plan"
    }


def test_unknown_document_shapes_are_rv100():
    assert "RV100" in rules_of(verify_document([1, 2, 3]))
    assert "RV100" in rules_of(verify_document({"format": "repro/unknown/v9"}))


def test_report_json_is_byte_identical_across_runs(alexnet_doc):
    first = verify_document(copy.deepcopy(alexnet_doc)).to_json()
    second = verify_document(copy.deepcopy(alexnet_doc)).to_json()
    assert first == second
    parsed = json.loads(first)
    assert parsed["format"] == "repro/analysis-report/v1"
    assert json.dumps(parsed, indent=2, sort_keys=True) == first
