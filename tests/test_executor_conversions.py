"""Executor correctness under layout conversions.

Satellite coverage for the runtime: every convolution primitive in the
library must compute the same function as the SUM2D reference when the
legalizer wraps it in each legal layout-conversion chain — i.e. for every
layout ``L`` of the DT graph, the chains ``L -> primitive.input_layout`` and
``primitive.output_layout -> L`` that :func:`repro.core.legalize.finalize_plan`
emits around the primitive must not change the result.
"""

import numpy as np
import pytest

from repro.core.legalize import finalize_plan
from repro.core.selector import SelectionContext
from repro.graph.layer import ConvLayer, InputLayer, ReLULayer
from repro.graph.network import Network
from repro.graph.scenario import ConvScenario
from repro.runtime import NetworkExecutor, WeightStore
from repro.primitives.registry import default_primitive_library

#: The probe scenario every parametrized primitive must support.
PROBE_SCENARIO = ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1)

#: Applicable primitive names, resolved at collection time for parametrize.
PRIMITIVE_NAMES = sorted(
    primitive.name for primitive in default_primitive_library().applicable(PROBE_SCENARIO)
)


def build_probe_network() -> Network:
    net = Network("conversion-probe")
    net.add_layer(InputLayer("data", shape=PROBE_SCENARIO.input_shape))
    net.add_layer(
        ConvLayer(
            "conv",
            out_channels=PROBE_SCENARIO.m,
            kernel=PROBE_SCENARIO.k,
            stride=PROBE_SCENARIO.stride,
            padding=PROBE_SCENARIO.padding,
        ),
        ["data"],
    )
    net.add_layer(ReLULayer("relu"), ["conv"])
    net.validate()
    return net


@pytest.fixture(scope="module")
def probe(library, dt_graph, intel):
    """(context, weights, input, reference output) shared by every case."""
    network = build_probe_network()
    context = SelectionContext.create(
        network, platform=intel, library=library, dt_graph=dt_graph
    )
    weights = WeightStore(network, seed=21)
    x = np.random.default_rng(8).standard_normal(PROBE_SCENARIO.input_shape)
    x = x.astype(np.float32)
    from repro.layouts.layout import CHW

    reference_plan = finalize_plan(
        context, "reference", {"conv": "sum2d"}, {"data": CHW, "relu": CHW}
    )
    reference = NetworkExecutor(network, reference_plan, library, weights).run(x)
    return context, weights, x, reference


def test_probe_covers_the_library():
    """The probe scenario exercises the overwhelming majority of the library."""
    assert len(PRIMITIVE_NAMES) >= 60


@pytest.mark.parametrize("primitive_name", PRIMITIVE_NAMES)
def test_primitive_matches_reference_under_every_conversion_chain(primitive_name, probe):
    context, weights, x, reference = probe
    network = context.network
    executed_chains = 0
    for layout in context.dt_graph.layouts:
        plan = finalize_plan(
            context,
            "probe",
            {"conv": primitive_name},
            {"data": layout, "relu": layout},
        )
        executor = NetworkExecutor(network, plan, context.library, weights)
        output, trace = executor.run_traced(x)
        executed_chains += trace.conversions_executed
        np.testing.assert_allclose(
            output,
            reference,
            rtol=1e-3,
            atol=1e-4,
            err_msg=f"{primitive_name} diverges when wrapped in {layout.name} conversions",
        )
    primitive = context.library.get(primitive_name)
    # Sanity: chains were actually exercised — every layout other than the
    # primitive's own endpoints forces at least one conversion.
    distinct_endpoints = len({primitive.input_layout.name, primitive.output_layout.name})
    layouts = len(context.dt_graph.layouts)
    assert executed_chains >= 2 * layouts - 2 * distinct_endpoints
