"""Executor correctness under layout conversions.

Satellite coverage for the runtime: every convolution primitive in the
library must compute the same function as the SUM2D reference when the
legalizer wraps it in each legal layout-conversion chain — i.e. for every
layout ``L`` of the DT graph, the chains ``L -> primitive.input_layout`` and
``primitive.output_layout -> L`` that :func:`repro.core.legalize.finalize_plan`
emits around the primitive must not change the result.  The same guarantee
is checked for the structures the residual/depthwise zoo added: depthwise
convolutions (every primitive that claims to support ``groups == C``) and
eltwise-add joins whose branches are wrapped in conversion chains.
"""

import numpy as np
import pytest

from repro.core.legalize import finalize_plan
from repro.core.selector import SelectionContext
from repro.graph.layer import ConvLayer, EltwiseAddLayer, InputLayer, ReLULayer
from repro.graph.network import Network
from repro.graph.scenario import ConvScenario
from repro.runtime import NetworkExecutor, WeightStore
from repro.primitives.registry import default_primitive_library

#: The probe scenario every parametrized primitive must support.
PROBE_SCENARIO = ConvScenario(c=4, h=12, w=12, stride=1, k=3, m=6, padding=1)

#: A MobileNet-shaped depthwise scenario (one input channel per group).
DEPTHWISE_SCENARIO = ConvScenario(c=8, h=12, w=12, stride=1, k=3, m=8, padding=1, groups=8)

#: A strided depthwise scenario (the downsampling blocks of MobileNet).
STRIDED_DEPTHWISE_SCENARIO = ConvScenario(
    c=8, h=12, w=12, stride=2, k=3, m=8, padding=1, groups=8
)

#: Applicable primitive names, resolved at collection time for parametrize.
PRIMITIVE_NAMES = sorted(
    primitive.name for primitive in default_primitive_library().applicable(PROBE_SCENARIO)
)

DEPTHWISE_PRIMITIVE_NAMES = sorted(
    primitive.name
    for primitive in default_primitive_library().applicable(DEPTHWISE_SCENARIO)
)


def build_probe_network() -> Network:
    net = Network("conversion-probe")
    net.add_layer(InputLayer("data", shape=PROBE_SCENARIO.input_shape))
    net.add_layer(
        ConvLayer(
            "conv",
            out_channels=PROBE_SCENARIO.m,
            kernel=PROBE_SCENARIO.k,
            stride=PROBE_SCENARIO.stride,
            padding=PROBE_SCENARIO.padding,
        ),
        ["data"],
    )
    net.add_layer(ReLULayer("relu"), ["conv"])
    net.validate()
    return net


@pytest.fixture(scope="module")
def probe(library, dt_graph, intel):
    """(context, weights, input, reference output) shared by every case."""
    network = build_probe_network()
    context = SelectionContext.create(
        network, platform=intel, library=library, dt_graph=dt_graph
    )
    weights = WeightStore(network, seed=21)
    x = np.random.default_rng(8).standard_normal(PROBE_SCENARIO.input_shape)
    x = x.astype(np.float32)
    from repro.layouts.layout import CHW

    reference_plan = finalize_plan(
        context, "reference", {"conv": "sum2d"}, {"data": CHW, "relu": CHW}
    )
    reference = NetworkExecutor(network, reference_plan, library, weights).run(x)
    return context, weights, x, reference


def test_probe_covers_the_library():
    """The probe scenario exercises the overwhelming majority of the library."""
    assert len(PRIMITIVE_NAMES) >= 60


@pytest.mark.parametrize("primitive_name", PRIMITIVE_NAMES)
def test_primitive_matches_reference_under_every_conversion_chain(primitive_name, probe):
    context, weights, x, reference = probe
    network = context.network
    executed_chains = 0
    for layout in context.dt_graph.layouts:
        plan = finalize_plan(
            context,
            "probe",
            {"conv": primitive_name},
            {"data": layout, "relu": layout},
        )
        executor = NetworkExecutor(network, plan, context.library, weights)
        output, trace = executor.run_traced(x)
        executed_chains += trace.conversions_executed
        np.testing.assert_allclose(
            output,
            reference,
            rtol=1e-3,
            atol=1e-4,
            err_msg=f"{primitive_name} diverges when wrapped in {layout.name} conversions",
        )
    primitive = context.library.get(primitive_name)
    # Sanity: chains were actually exercised — every layout other than the
    # primitive's own endpoints forces at least one conversion.
    distinct_endpoints = len({primitive.input_layout.name, primitive.output_layout.name})
    layouts = len(context.dt_graph.layouts)
    assert executed_chains >= 2 * layouts - 2 * distinct_endpoints


# ---------------------------------------------------------------------------
# Depthwise convolutions
# ---------------------------------------------------------------------------


def build_depthwise_network(scenario: ConvScenario) -> Network:
    net = Network("depthwise-probe")
    net.add_layer(InputLayer("data", shape=scenario.input_shape))
    net.add_layer(
        ConvLayer(
            "conv",
            out_channels=scenario.m,
            kernel=scenario.k,
            stride=scenario.stride,
            padding=scenario.padding,
            groups=scenario.groups,
        ),
        ["data"],
    )
    net.add_layer(ReLULayer("relu"), ["conv"])
    net.validate()
    return net


def test_depthwise_capability_model():
    """kn2/FFT decline depthwise; direct, im2 and Winograd families run it."""
    library = default_primitive_library()
    names = set(DEPTHWISE_PRIMITIVE_NAMES)
    assert not any(name.startswith(("kn2", "fft")) for name in names)
    for prefix in ("sum2d", "direct", "im2", "winograd"):
        assert any(name.startswith(prefix) for name in names), prefix
    # Strided depthwise additionally drops the unit-stride-only Winograd.
    strided = {p.name for p in library.applicable(STRIDED_DEPTHWISE_SCENARIO)}
    assert not any(name.startswith(("kn2", "fft", "winograd")) for name in strided)
    assert any(name.startswith("im2") for name in strided)


@pytest.fixture(scope="module")
def depthwise_probe(library, dt_graph, intel):
    """(context, weights, input, reference output) for the depthwise probe."""
    from repro.layouts.layout import CHW

    network = build_depthwise_network(DEPTHWISE_SCENARIO)
    context = SelectionContext.create(
        network, platform=intel, library=library, dt_graph=dt_graph
    )
    weights = WeightStore(network, seed=17)
    x = np.random.default_rng(12).standard_normal(DEPTHWISE_SCENARIO.input_shape)
    x = x.astype(np.float32)
    reference_plan = finalize_plan(
        context, "reference", {"conv": "sum2d"}, {"data": CHW, "relu": CHW}
    )
    reference = NetworkExecutor(network, reference_plan, library, weights).run(x)
    return context, weights, x, reference


@pytest.mark.parametrize("primitive_name", DEPTHWISE_PRIMITIVE_NAMES)
def test_depthwise_matches_reference_under_every_conversion_chain(
    primitive_name, depthwise_probe
):
    context, weights, x, reference = depthwise_probe
    network = context.network
    for layout in context.dt_graph.layouts:
        plan = finalize_plan(
            context,
            "probe",
            {"conv": primitive_name},
            {"data": layout, "relu": layout},
        )
        executor = NetworkExecutor(network, plan, context.library, weights)
        output = executor.run(x)
        np.testing.assert_allclose(
            output,
            reference,
            rtol=1e-3,
            atol=1e-4,
            err_msg=(
                f"{primitive_name} diverges on a depthwise scenario wrapped in "
                f"{layout.name} conversions"
            ),
        )


@pytest.mark.parametrize(
    "primitive_name",
    sorted(
        p.name
        for p in default_primitive_library().applicable(STRIDED_DEPTHWISE_SCENARIO)
    ),
)
def test_strided_depthwise_matches_reference(primitive_name, library, dt_graph, intel):
    from repro.layouts.layout import CHW

    network = build_depthwise_network(STRIDED_DEPTHWISE_SCENARIO)
    context = SelectionContext.create(
        network, platform=intel, library=library, dt_graph=dt_graph
    )
    weights = WeightStore(network, seed=23)
    x = np.random.default_rng(13).standard_normal(
        STRIDED_DEPTHWISE_SCENARIO.input_shape
    ).astype(np.float32)
    reference_plan = finalize_plan(
        context, "reference", {"conv": "sum2d"}, {"data": CHW, "relu": CHW}
    )
    reference = NetworkExecutor(network, reference_plan, library, weights).run(x)
    plan = finalize_plan(
        context, "probe", {"conv": primitive_name}, {"data": CHW, "relu": CHW}
    )
    output = NetworkExecutor(network, plan, library, weights).run(x)
    np.testing.assert_allclose(output, reference, rtol=1e-3, atol=1e-4)


# ---------------------------------------------------------------------------
# Eltwise-add joins
# ---------------------------------------------------------------------------


def build_residual_network() -> Network:
    """A miniature residual block: the input fans out and rejoins in an add."""
    net = Network("residual-probe")
    net.add_layer(InputLayer("data", shape=PROBE_SCENARIO.input_shape))
    net.add_layer(
        ConvLayer(
            "conv",
            out_channels=PROBE_SCENARIO.input_shape[0],
            kernel=PROBE_SCENARIO.k,
            stride=1,
            padding=PROBE_SCENARIO.padding,
        ),
        ["data"],
    )
    net.add_layer(ReLULayer("branch"), ["conv"])
    net.add_layer(EltwiseAddLayer("add"), ["branch", "data"])
    net.add_layer(ReLULayer("relu"), ["add"])
    net.validate()
    return net


#: One representative primitive per family for the residual-join sweep (the
#: whole-library sweep above already covers per-primitive numerics).
RESIDUAL_SWEEP_PRIMITIVES = [
    "sum2d",
    "direct_mchw_vf8",
    "im2row_vf8",
    "kn2col_acc_vf8",
    "winograd_2d_m2_r3_vf8",
    "winograd_1d_m2_r3_vf4",
    "fft_1d_chw_vf1",
]


@pytest.fixture(scope="module")
def residual_probe(library, dt_graph, intel):
    from repro.layouts.layout import CHW

    network = build_residual_network()
    context = SelectionContext.create(
        network, platform=intel, library=library, dt_graph=dt_graph
    )
    weights = WeightStore(network, seed=29)
    x = np.random.default_rng(14).standard_normal(PROBE_SCENARIO.input_shape)
    x = x.astype(np.float32)
    wildcard = {"data": CHW, "branch": CHW, "add": CHW, "relu": CHW}
    reference_plan = finalize_plan(context, "reference", {"conv": "sum2d"}, wildcard)
    reference = NetworkExecutor(network, reference_plan, library, weights).run(x)
    return context, weights, x, reference


@pytest.mark.parametrize("primitive_name", RESIDUAL_SWEEP_PRIMITIVES)
def test_residual_join_matches_reference_under_every_conversion_chain(
    primitive_name, residual_probe
):
    """The add executes correctly whatever layout the join operates in.

    For every DT-graph layout ``L`` the whole wildcard region (both join
    inputs and the output path) is pinned to ``L``, so the legalizer has to
    wrap the convolution branch *and* the shortcut edge in conversion chains
    ending at the join — the exact structure of a ResNet basic block.
    """
    context, weights, x, reference = residual_probe
    network = context.network
    for layout in context.dt_graph.layouts:
        plan = finalize_plan(
            context,
            "probe",
            {"conv": primitive_name},
            {"data": layout, "branch": layout, "add": layout, "relu": layout},
        )
        executor = NetworkExecutor(network, plan, context.library, weights)
        output = executor.run(x)
        np.testing.assert_allclose(
            output,
            reference,
            rtol=1e-3,
            atol=1e-4,
            err_msg=(
                f"{primitive_name} residual join diverges when the join "
                f"operates in {layout.name}"
            ),
        )
