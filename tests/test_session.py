"""Tests for the Session API: plan→execute, cost providers and the CostStore."""

import json

import numpy as np
import pytest

import repro.cost.provider as provider_module
from repro.api import (
    ComparisonReport,
    Engine,
    ExecutionReport,
    Plan,
    Session,
)
from repro.cost.provider import (
    AnalyticalCostProvider,
    CostModelProvider,
    CostProvider,
    CostQuery,
    ProfiledCostProvider,
)
from repro.cost.store import CostStore, STORE_ENTRY_FORMAT


@pytest.fixture
def session(library, dt_graph):
    return Session(library=library, dt_graph=dt_graph)


@pytest.fixture
def counting_builds(monkeypatch):
    """Count every cost-table build (i.e. every act of profiling)."""
    builds = []
    original = provider_module.build_cost_tables

    def counting(*args, **kwargs):
        builds.append(kwargs.get("threads"))
        return original(*args, **kwargs)

    monkeypatch.setattr(provider_module, "build_cost_tables", counting)
    return builds


class TestPlanExecute:
    def test_plan_handle_wraps_selection(self, session, tiny_network):
        plan = session.plan(tiny_network, "intel-haswell")
        assert isinstance(plan, Plan)
        assert plan.strategy == "pbqp"
        assert plan.total_ms == plan.network_plan.total_ms
        assert plan.input_shape() == (3, 32, 32)

    def test_execute_reports_per_layer_times(self, session, tiny_network):
        plan = session.plan(tiny_network, "intel-haswell")
        report = plan.execute()
        assert isinstance(report, ExecutionReport)
        layer_names = [entry.layer for entry in report.layers]
        assert layer_names == [layer.name for layer in tiny_network.topological_order()]
        assert all(entry.measured_ms >= 0 for entry in report.layers)
        # Convolution layers carry their primitive and predicted cost.
        conv_entries = [e for e in report.layers if e.primitive is not None]
        assert set(e.layer for e in conv_entries) == set(
            plan.network_plan.conv_selections()
        )
        for entry in conv_entries:
            assert entry.predicted_ms == pytest.approx(
                1e3 * plan.network_plan.decision(entry.layer).cost
            )
            assert entry.delta_ms == pytest.approx(entry.measured_ms - entry.predicted_ms)

    def test_execute_accounts_for_conversions(self, session, tiny_network):
        plan = session.plan(tiny_network, "intel-haswell")
        report = plan.execute()
        # One planned chain per (producer, target layout): the executor
        # converts once per dedup group and reuses the cached tensor.
        chain_groups = {
            (edge.producer, edge.target_layout.name)
            for edge in plan.network_plan.conversions()
        }
        assert report.conversions_planned == len(chain_groups)
        assert report.conversions_executed == report.conversions_planned
        assert len(report.conversions) == len(plan.network_plan.conversions())
        deduplicated = [entry for entry in report.conversions if entry.deduplicated]
        assert len(deduplicated) == len(plan.network_plan.conversions()) - len(
            chain_groups
        )
        assert all(entry.predicted_ms == 0.0 for entry in deduplicated)
        assert report.predicted_conversion_ms == pytest.approx(
            1e3 * plan.network_plan.dt_cost
        )
        assert report.measured_conversion_ms >= 0
        assert report.measured_total_ms <= report.wall_ms + 1.0

    def test_predicted_vs_measured_totals(self, session, tiny_network):
        plan = session.plan(tiny_network, "intel-haswell")
        report = plan.execute()
        assert report.predicted_total_ms == pytest.approx(plan.total_ms, rel=1e-6)
        assert report.measured_total_ms > 0
        assert report.prediction_ratio == pytest.approx(
            report.measured_total_ms / report.predicted_total_ms
        )

    def test_execute_output_matches_sum2d_reference(self, session, tiny_network):
        pbqp = session.plan(tiny_network, "intel-haswell", strategy="pbqp")
        sum2d = session.plan(tiny_network, "intel-haswell", strategy="sum2d")
        # Same seed => same weights and same generated input.
        out_pbqp = pbqp.execute(seed=7).output
        out_sum2d = sum2d.execute(seed=7).output
        np.testing.assert_allclose(out_pbqp, out_sum2d, rtol=1e-3, atol=1e-4)

    def test_run_one_shot(self, session, tiny_network):
        report = session.run(tiny_network, "intel-haswell", strategy="local_optimal")
        assert report.strategy == "local_optimal"
        assert report.output.shape == (10, 1, 1)
        assert report.output.sum() == pytest.approx(1.0, abs=1e-5)

    def test_format_is_readable(self, session, tiny_network):
        report = session.run(tiny_network, "intel-haswell")
        text = report.format()
        assert "Execution report" in text
        assert "measured" in text and "predicted" in text
        for name in tiny_network.layer_names():
            assert name in text

    def test_single_output_report_heads(self, session, tiny_network):
        report = session.run(tiny_network, "intel-haswell")
        assert report.output_layer == "prob"
        assert set(report.heads) == {"prob"}
        np.testing.assert_array_equal(report.heads["prob"], report.output)
        np.testing.assert_array_equal(report.primary_output, report.output)

    def test_multi_output_report_surfaces_every_head(self, session):
        from repro.graph.layer import ConvLayer, InputLayer, PoolLayer, ReLULayer
        from repro.graph.network import Network

        net = Network("two-heads")
        net.add_layer(InputLayer("data", shape=(3, 12, 12)))
        net.add_layer(ConvLayer("conv", out_channels=4, kernel=3, padding=1), ["data"])
        net.add_layer(ReLULayer("head_a"), ["conv"])
        net.add_layer(PoolLayer("head_b", kernel=2, stride=2), ["conv"])
        net.validate()

        report = session.run(net, "intel-haswell")
        assert isinstance(report.output, dict)
        assert set(report.heads) == {"head_a", "head_b"}
        # The primary head is the last output layer in topological order.
        assert report.output_layer == "head_b"
        np.testing.assert_array_equal(report.primary_output, report.output["head_b"])
        assert report.heads["head_a"].shape == (4, 12, 12)
        assert report.heads["head_b"].shape == (4, 6, 6)

    def test_plan_save_and_reload_roundtrip(self, session, tiny_network, tmp_path):
        plan = session.plan(tiny_network, "intel-haswell")
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = session.plan_from_file(path, network=tiny_network)
        assert loaded.network_plan.conv_selections() == plan.network_plan.conv_selections()
        out_a = plan.execute(seed=3).output
        out_b = loaded.execute(seed=3).output
        np.testing.assert_allclose(out_b, out_a, rtol=1e-5, atol=1e-6)

    def test_plan_from_file_rejects_wrong_network(self, session, tiny_network, tmp_path):
        plan = session.plan(tiny_network, "intel-haswell")
        path = tmp_path / "plan.json"
        plan.save(path)
        from repro.models import build_model

        with pytest.raises(ValueError, match="saved for network"):
            session.plan_from_file(path, network=build_model("alexnet"))


class TestCompare:
    def test_compare_is_sorted_by_total_cost(self, session):
        report = session.compare("alexnet", "intel-haswell")
        assert isinstance(report, ComparisonReport)
        totals = [r.total_ms for r in report.results]
        assert totals == sorted(totals)
        assert report.best.strategy == "pbqp"

    def test_compare_rows_carry_speedup_vs_baseline(self, session):
        report = session.compare("alexnet", "intel-haswell")
        assert report.baseline.strategy == "sum2d"
        assert report.baseline.threads == 1
        for strategy, total_ms, speedup in report.rows():
            assert speedup == pytest.approx(report.baseline.total_ms / total_ms)
        # The ranked-first row has the highest speedup.
        speedups = [row[2] for row in report.rows()]
        assert speedups == sorted(speedups, reverse=True)

    def test_compare_profiles_once(self, session, counting_builds):
        session.compare("alexnet", "intel-haswell")
        assert len(counting_builds) == 1
        assert session.cache_info().misses == 1

    def test_compare_format_mentions_ranking(self, session):
        text = session.compare("alexnet", "intel-haswell").format()
        assert "sorted by total cost" in text
        assert "speedup" in text
        assert "pbqp" in text


class TestSelectManyParallel:
    def test_groups_by_context_and_profiles_each_once(self, session, counting_builds):
        requests = [
            ("alexnet", "intel-haswell", "pbqp", 1),
            ("alexnet", "intel-haswell", "local_optimal", 1),
            ("alexnet", "arm-cortex-a57", "pbqp", 1),
            ("alexnet", "intel-haswell", "sum2d", 1),
        ]
        results = session.select_many(requests)
        assert [r.strategy for r in results] == ["pbqp", "local_optimal", "pbqp", "sum2d"]
        # Two distinct contexts, each profiled exactly once (on the pool).
        assert len(counting_builds) == 2
        info = session.cache_info()
        assert info.misses == 2 and info.contexts == 2
        # Every selection then hit the warm cache.
        assert all(r.from_cache for r in results)

    def test_single_context_stays_sequential(self, session, counting_builds):
        results = session.select_many(
            [("alexnet", "intel-haswell", "pbqp", 1)], max_workers=4
        )
        assert len(results) == 1 and len(counting_builds) == 1

    def test_max_workers_one_forces_sequential(self, session, counting_builds):
        session.select_many(
            [
                ("alexnet", "intel-haswell", "pbqp", 1),
                ("alexnet", "arm-cortex-a57", "pbqp", 1),
            ],
            max_workers=1,
        )
        assert len(counting_builds) == 2
        assert session.cache_info().misses == 2

    def test_results_match_sequential_engine(self, library, dt_graph):
        requests = [
            ("alexnet", "intel-haswell", "pbqp", 1),
            ("alexnet", "arm-cortex-a57", "pbqp", 1),
        ]
        parallel = Session(library=library, dt_graph=dt_graph).select_many(requests)
        sequential = Engine(library=library, dt_graph=dt_graph).select_many(requests)
        for p, s in zip(parallel, sequential):
            assert p.plan.conv_selections() == s.plan.conv_selections()
            assert p.total_ms == pytest.approx(s.total_ms)


class TestProviders:
    def test_analytical_is_the_default(self, session):
        assert isinstance(session.provider, AnalyticalCostProvider)
        assert session.provider.name == "analytical"

    def test_analytical_requires_platform(self):
        with pytest.raises(ValueError, match="requires a platform"):
            AnalyticalCostProvider().cost_model(None)

    def test_profiled_provider_drives_selection(self, library, dt_graph, tiny_network):
        session = Session(
            library=library, dt_graph=dt_graph, provider=ProfiledCostProvider()
        )
        result = session.select(tiny_network, None)
        assert result.platform == "profiled"
        assert result.strategy == "pbqp"
        # Measured costs are real times: strictly positive.
        context = session.context_for(tiny_network, None)
        for costs in context.tables.node_costs.values():
            assert all(value > 0 for value in costs.values())

    def test_cost_model_provider_adapts_any_model(self, library, dt_graph, intel_cost_model):
        provider = CostModelProvider(intel_cost_model, name="adapted", version="9")
        assert provider.name == "adapted" and provider.version == "9"
        session = Session(library=library, dt_graph=dt_graph, provider=provider)
        result = session.select("alexnet", None)
        assert result.platform == "adapted"

    def test_providers_satisfy_protocol(self, tmp_path):
        assert isinstance(AnalyticalCostProvider(), CostProvider)
        assert isinstance(ProfiledCostProvider(), CostProvider)
        assert isinstance(CostStore(tmp_path), CostProvider)


class TestCostStore:
    def test_session_cache_dir_wraps_provider(self, library, dt_graph, tmp_path):
        session = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        assert isinstance(session.provider, CostStore)
        assert session.store is session.provider
        assert session.store.provider.name == "analytical"

    def test_fresh_session_skips_profiling(
        self, library, dt_graph, tiny_network, tmp_path, counting_builds
    ):
        first = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        cold = first.select(tiny_network, "intel-haswell")
        assert len(counting_builds) == 1
        assert first.store.stats().misses == 1

        # A new session simulates a fresh process: in-memory caches are empty.
        second = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        warm = second.select(tiny_network, "intel-haswell")
        assert len(counting_builds) == 1  # zero additional profiling
        assert second.store.stats().hits == 1
        assert warm.plan.conv_selections() == cold.plan.conv_selections()
        assert warm.total_ms == pytest.approx(cold.total_ms)

    def test_entries_are_keyed_and_versioned(self, library, dt_graph, tiny_network, tmp_path):
        session = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        session.select(tiny_network, "intel-haswell")
        session.select(tiny_network, "arm-cortex-a57")
        entries = session.store.entries()
        assert len(entries) == 2
        platforms = {entry.key.platform for entry in entries}
        assert platforms == {"intel-haswell", "arm-cortex-a57"}
        for entry in entries:
            assert entry.key.provider == "analytical"
            assert entry.key.provider_version == AnalyticalCostProvider.version
            document = json.loads(entry.path.read_text())
            assert document["format"] == STORE_ENTRY_FORMAT

    def test_provider_version_invalidates_entries(
        self, library, dt_graph, tiny_network, tmp_path, counting_builds
    ):
        class BumpedProvider(AnalyticalCostProvider):
            version = "999-test"

        first = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        first.select(tiny_network, "intel-haswell")
        assert len(counting_builds) == 1

        bumped = Session(
            library=library,
            dt_graph=dt_graph,
            provider=CostStore(tmp_path, BumpedProvider()),
        )
        bumped.select(tiny_network, "intel-haswell")
        # The stale v1 entry is not served for the bumped provider.
        assert len(counting_builds) == 2
        assert len(bumped.store.entries()) == 2

    def test_clear_removes_entries(self, library, dt_graph, tiny_network, tmp_path):
        session = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        session.select(tiny_network, "intel-haswell")
        assert session.store.clear() == 1
        assert session.store.entries() == []

    def test_multithreaded_framework_tables_go_through_store(
        self, library, dt_graph, tiny_network, tmp_path, counting_builds
    ):
        first = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        # mkldnn needs single-threaded tables on top of the 4-thread ones.
        first.select(tiny_network, "intel-haswell", strategy="mkldnn", threads=4)
        assert sorted(counting_builds) == [1, 4]
        assert len(first.store.entries()) == 2

        second = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        second.select(tiny_network, "intel-haswell", strategy="mkldnn", threads=4)
        assert sorted(counting_builds) == [1, 4]  # both table sets came from disk

    def test_different_library_does_not_hit_stale_entries(
        self, library, dt_graph, tiny_network, tmp_path, counting_builds
    ):
        full = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        full_result = full.select(tiny_network, "intel-haswell")
        assert len(counting_builds) == 1

        # A session over a reduced library must not load the full-library
        # tables (their node costs name primitives the session cannot run).
        from repro.primitives.base import PrimitiveFamily

        reduced_names = [
            p.name
            for p in library
            if p.family in (PrimitiveFamily.SUM2D, PrimitiveFamily.IM2)
        ]
        reduced = Session(library=library.subset(reduced_names), cache_dir=tmp_path)
        result = reduced.select(tiny_network, "intel-haswell")
        assert len(counting_builds) == 2  # re-profiled, not served stale
        chosen = set(result.plan.conv_selections().values())
        assert chosen <= set(reduced_names)
        assert set(full_result.plan.conv_selections().values()) - set(reduced_names)

    def test_concurrent_writes_of_one_key_never_tear(
        self, library, dt_graph, tiny_network, tmp_path
    ):
        """Regression: per-call unique temp names for the write-then-rename.

        A pid-suffixed temp name is shared by every thread of one process, so
        two ``select_many`` workers producing the same key used to interleave
        on one temp file and rename a torn JSON document.  Each writer must
        use its own temp file; afterwards the entry must parse and be served.
        """
        import threading

        from repro.api import network_fingerprint
        from repro.cost.platform import PLATFORMS

        store = CostStore(tmp_path, AnalyticalCostProvider())
        query = CostQuery(
            network=tiny_network,
            fingerprint=network_fingerprint(tiny_network),
            platform=PLATFORMS["intel-haswell"],
            platform_name="intel-haswell",
            threads=1,
            library=library,
            dt_graph=dt_graph,
        )
        tables = store.provider.tables(query)
        key = store.key_for(query)
        path = store.path_for(key)

        barrier = threading.Barrier(8)
        errors = []

        def write():
            try:
                barrier.wait()
                for _ in range(5):
                    store._write(path, key, tables)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The entry parses (no torn write) and no temp litter is left behind.
        document = json.loads(path.read_text())
        assert document["format"] == STORE_ENTRY_FORMAT
        assert [entry.path for entry in store.entries()] == [path]
        assert not list(tmp_path.glob("*.tmp")) and not list(tmp_path.glob(".*"))
        # And a fresh store serves it.
        fresh = CostStore(tmp_path, AnalyticalCostProvider())
        served = fresh.tables(query)
        assert served.node_costs == tables.node_costs
        assert fresh.stats().hits == 1

    def test_store_roundtrip_preserves_selection(self, library, dt_graph, tmp_path):
        cold = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        cold_result = cold.select("alexnet", "intel-haswell")
        warm = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        warm_result = warm.select("alexnet", "intel-haswell")
        assert warm_result.plan.conv_selections() == cold_result.plan.conv_selections()
        assert warm_result.total_ms == pytest.approx(cold_result.total_ms)


class TestEngineShim:
    def test_engine_is_a_session(self, library, dt_graph):
        engine = Engine(library=library, dt_graph=dt_graph)
        assert isinstance(engine, Session)

    def test_engine_compare_keeps_registry_order(self, library, dt_graph):
        from repro.core.strategies import applicable_strategies

        engine = Engine(library=library, dt_graph=dt_graph)
        results = engine.compare("alexnet", "intel-haswell")
        assert isinstance(results, list)
        expected = [
            s.name
            for s in applicable_strategies(
                engine.context_for("alexnet", "intel-haswell")
            )
        ]
        assert [r.strategy for r in results] == expected

    def test_engine_run_end_to_end(self, library, dt_graph):
        """Acceptance: Engine.run('alexnet', 'intel-haswell') works end-to-end."""
        engine = Engine(library=library, dt_graph=dt_graph)
        report = engine.run("alexnet", "intel-haswell")
        assert isinstance(report, ExecutionReport)
        assert report.model == "alexnet"
        network = engine.context_for("alexnet", "intel-haswell").network
        assert [entry.layer for entry in report.layers] == [
            layer.name for layer in network.topological_order()
        ]
        assert all(entry.measured_ms >= 0 for entry in report.layers)
        assert report.measured_total_ms > 0
        assert report.output.shape == (1000, 1, 1)
        assert report.output.sum() == pytest.approx(1.0, abs=1e-4)


class TestSessionCLI:
    def test_cli_select_save_then_run_plan(self, tmp_path, capsys):
        from repro.cli import main

        saved = tmp_path / "alexnet.json"
        assert main(["select", "alexnet", "--save", str(saved)]) == 0
        capsys.readouterr()
        assert saved.exists()
        assert main(["run", "alexnet", "--plan", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "executing saved plan" in out
        assert "Execution report" in out
        assert "output: class" in out

    def test_cli_run_with_cache_dir_populates_store(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert main(
            [
                "run",
                "alexnet",
                "--cache-dir",
                str(cache),
                "--strategy",
                "local_optimal",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Execution report" in out
        assert len(CostStore(cache).entries()) == 1

    def test_cli_cache_lists_and_clears(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        assert main(["select", "alexnet", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out and "alexnet" in out
        assert main(["cache", "--cache-dir", str(cache), "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cli_compare_is_ranked_with_speedups(self, capsys):
        from repro.cli import main

        assert main(["compare", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "sorted by total cost" in out
        assert "best strategy: pbqp" in out
        # The first data row is the fastest strategy (pbqp).
        lines = [
            line
            for line in out.splitlines()
            if line and not line.startswith(("Strategy", "strategy", "-", "(", "best"))
        ]
        assert lines[0].startswith("pbqp")

    def test_cli_run_rejects_missing_plan_file(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "alexnet", "--plan", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_run_rejects_plan_for_other_network(self, tmp_path, capsys):
        from repro.cli import main

        saved = tmp_path / "alexnet.json"
        assert main(["select", "alexnet", "--save", str(saved)]) == 0
        capsys.readouterr()
        code = main(["run", "vgg-a", "--plan", str(saved)])
        assert code == 2
        err = capsys.readouterr().err
        assert "saved for network 'alexnet'" in err and "vgg-a" in err


class TestConcurrentSession:
    def test_concurrent_plan_builds_tables_once(self, session, counting_builds):
        """Regression: two threads planning the same key build one table set.

        The context memoization used to be a bare dict: two simultaneous
        first requests both missed and both profiled.  With the per-key build
        locks exactly one thread builds while the other waits for the result.
        """
        import threading

        barrier = threading.Barrier(2)
        plans, errors = [], []

        def worker():
            try:
                barrier.wait(timeout=30)
                plans.append(session.plan("alexnet", "intel-haswell"))
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(plans) == 2
        assert len(counting_builds) == 1  # exactly one profiling pass
        info = session.cache_info()
        assert info.misses == 1 and info.contexts == 1
        assert (
            plans[0].network_plan.conv_selections()
            == plans[1].network_plan.conv_selections()
        )

    def test_concurrent_distinct_keys_build_independently(self, session, counting_builds):
        import threading

        platforms = ["intel-haswell", "arm-cortex-a57"]
        threads = [
            threading.Thread(target=session.plan, args=("alexnet", platform))
            for platform in platforms
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(counting_builds) == 2
        assert session.cache_info().contexts == 2


class TestStoreEviction:
    @pytest.fixture
    def warm_store(self, library, dt_graph, tiny_network, tmp_path):
        session = Session(library=library, dt_graph=dt_graph, cache_dir=tmp_path)
        session.select(tiny_network, "intel-haswell")
        session.select(tiny_network, "arm-cortex-a57")
        return session.store

    def test_entries_are_sharded_by_platform(self, warm_store):
        shards = {entry.path.parent.name for entry in warm_store.entries()}
        assert shards == {"intel-haswell", "arm-cortex-a57"}

    def test_evict_noop_on_current_entries(self, warm_store):
        report = warm_store.evict()
        assert report.removed == 0
        assert len(warm_store.entries()) == 2
        assert warm_store.stats().evictions == 0

    def test_evict_removes_stale_format(self, warm_store, tmp_path):
        entry = warm_store.entries()[0]
        document = json.loads(entry.path.read_text())
        document["format"] = "repro/cost-store-entry/v1"
        entry.path.write_text(json.dumps(document))
        (tmp_path / "junk.json").write_text("{not json")

        report = warm_store.evict()
        assert report.stale_format == 2 and report.removed == 2
        assert len(warm_store.entries()) == 1
        assert warm_store.stats().evictions == 2

    def test_evict_removes_stale_platform_version(self, warm_store):
        entry = warm_store.entries()[0]
        document = json.loads(entry.path.read_text())
        document["key"]["platform_version"] = "v0:deadbeef"
        entry.path.write_text(json.dumps(document))

        report = warm_store.evict()
        assert report.stale_platform == 1 and report.removed == 1
        assert len(warm_store.entries()) == 1

    def test_evict_keeps_unregistered_platforms(self, warm_store):
        # An entry for a platform nobody has registered in this process may
        # belong to another deployment sharing the store; TTL-less eviction
        # must keep it.
        entry = warm_store.entries()[0]
        document = json.loads(entry.path.read_text())
        document["key"]["platform"] = "somebody-elses-board"
        entry.path.write_text(json.dumps(document))
        report = warm_store.evict()
        assert report.removed == 0

    def test_evict_ttl_by_mtime(self, warm_store):
        import time as time_module

        now = time_module.time()
        report = warm_store.evict(ttl_seconds=3600.0, now=now + 7200.0)
        assert report.expired == 2 and report.removed == 2
        assert warm_store.stats().entries == 0
        assert warm_store.stats().evictions == 2

    def test_stats_reports_bytes_on_disk(self, warm_store):
        stats = warm_store.stats()
        assert stats.entries == 2
        expected = sum(entry.size_bytes for entry in warm_store.entries())
        assert stats.bytes_on_disk == expected > 0

    def test_cli_cache_evict(self, warm_store, capsys):
        from repro.cli import main

        entry = warm_store.entries()[0]
        document = json.loads(entry.path.read_text())
        document["format"] = "stale"
        entry.path.write_text(json.dumps(document))
        assert main(["cache", "--cache-dir", str(warm_store.cache_dir), "--evict"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 entry" in out and "stale format: 1" in out
        assert (
            main(
                [
                    "cache",
                    "--cache-dir",
                    str(warm_store.cache_dir),
                    "--evict",
                    "--ttl-hours",
                    "0",
                ]
            )
            == 0
        )
        assert "expired: 1" in capsys.readouterr().out
