"""End-to-end tests for the planning daemon (repro.service).

A real ThreadingHTTPServer is booted once per module on an ephemeral port;
every test talks to it through :class:`PlannerClient` — the same stdlib HTTP
path production clients use.  The invariants under test are the service's
contract: responses are valid JSON envelopes, plans are byte-identical to
direct :meth:`Session.plan` calls, and warm requests perform zero PBQP solves
(proved by the process-wide solve counter, not by timing).
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Session
from repro.cost.serialize import plan_to_dict
from repro.pbqp.solver import solve_count
from repro.service import (
    PlannerApp,
    PlannerClient,
    ServiceError,
    WarmJob,
    WarmingQueue,
    executor,
    grid_jobs,
    make_server,
)
from repro.service.app import Field, ValidationError, validate_body
from repro.service.metrics import LatencyHistogram, Metrics, labelled, quantile

MODELS = ("alexnet", "resnet18")
PLATFORMS_UNDER_TEST = ("intel-haswell", "arm-cortex-a57")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One daemon over a store-backed session, shared by the module."""
    cache_dir = tmp_path_factory.mktemp("service-store")
    app = PlannerApp(cache_dir=str(cache_dir))
    server = make_server(app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = PlannerClient(*server.server_address[:2])
    client.wait_until_ready()
    yield app, client
    server.shutdown()
    server.server_close()
    app.close()
    thread.join(timeout=10)


def canonical(document: dict) -> str:
    return json.dumps(document, sort_keys=True)


class TestEnvelopes:
    def test_healthz_reports_registries(self, service):
        app, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["models"] >= 9 and health["platforms"] >= 4
        assert health["uptime_s"] >= 0
        assert set(health["warming"]) >= {"pending", "completed", "failed"}

    def test_platforms_lists_every_registered_platform(self, service):
        from repro.cost.platform import list_platforms

        _, client = service
        names = [p["name"] for p in client.platforms()]
        assert names == list_platforms()
        haswell = next(p for p in client.platforms() if p["name"] == "intel-haswell")
        assert haswell["cores"] == 4 and haswell["vector_width"] == 8

    def test_metrics_shape(self, service):
        _, client = service
        metrics = client.metrics()
        assert set(metrics) >= {
            "counters",
            "latencies_ms",
            "pbqp_solves_total",
            "session",
            "store",
            "warming",
        }
        assert metrics["store"] is not None  # the session wraps a CostStore
        assert metrics["counters"]["requests_total"] >= 1


class TestPlanEndpoint:
    def test_dtype_parameter_is_honoured(self, service):
        app, client = service
        document = client.plan("alexnet", "intel-haswell", dtype="int8")
        assert document["dtype"] == "int8"
        direct = app.session.plan("alexnet", "intel-haswell", dtype="int8")
        assert canonical(document["plan"]) == canonical(
            plan_to_dict(direct.network_plan)
        )
        assert document["plan"]["dtype"] == "int8"

    def test_unknown_dtype_is_a_validation_error(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.plan("alexnet", "intel-haswell", dtype="bf16")
        assert excinfo.value.status == 400
        assert any(d["field"] == "dtype" for d in excinfo.value.details)

    def test_plan_matches_direct_session_byte_for_byte(self, service):
        app, client = service
        document = client.plan("alexnet", "intel-haswell")
        direct = app.session.plan("alexnet", "intel-haswell")
        assert canonical(document["plan"]) == canonical(
            plan_to_dict(direct.network_plan)
        )
        assert document["total_ms"] == pytest.approx(direct.total_ms)
        assert document["model"] == "alexnet"
        assert document["platform"] == "intel-haswell"

    def test_warm_request_is_cached_and_solve_free(self, service):
        _, client = service
        first = client.plan("alexnet", "arm-cortex-a57")
        before = solve_count()
        second = client.plan("alexnet", "arm-cortex-a57")
        assert solve_count() == before  # zero PBQP solves on the warm path
        assert second["from_cache"] is True
        assert canonical(first["plan"]) == canonical(second["plan"])

    def test_strategy_and_batch_parameters_are_honoured(self, service):
        app, client = service
        document = client.plan(
            "alexnet", "intel-haswell", strategy="im2", threads=4, batch=8
        )
        assert document["strategy"] == "im2"
        assert document["batch"] == 8
        direct = app.session.plan(
            "alexnet", "intel-haswell", strategy="im2", threads=4, batch=8
        )
        assert canonical(document["plan"]) == canonical(
            plan_to_dict(direct.network_plan)
        )

    def test_platform_gated_strategy_is_a_client_error(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.plan("alexnet", "arm-cortex-a57", strategy="mkldnn")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "strategy_not_applicable"


class TestValidation:
    def test_all_problems_reported_in_one_response(self, service):
        _, client = service
        status, payload = client.request(
            "POST", "/v1/plan", {"platform": "not-a-platform", "batch": 0, "bogus": 1}
        )
        assert status == 400
        assert payload["error"]["code"] == "validation_error"
        fields = sorted(d["field"] for d in payload["error"]["details"])
        assert fields == ["batch", "bogus", "model", "platform"]

    def test_unknown_choice_lists_valid_names(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.plan("not-a-model", "intel-haswell")
        detail = excinfo.value.details[0]
        assert detail["field"] == "model" and "alexnet" in detail["message"]

    def test_bool_is_not_an_integer(self, service):
        _, client = service
        status, payload = client.request(
            "POST",
            "/v1/plan",
            {"model": "alexnet", "platform": "intel-haswell", "batch": True},
        )
        assert status == 400
        assert payload["error"]["details"][0]["field"] == "batch"

    def test_non_json_body_is_a_structured_400(self, service):
        import http.client

        _, client = service
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/plan",
                body=b"this is not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_unknown_path_is_404_listing_known_endpoints(self, service):
        _, client = service
        status, payload = client.request("GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "/v1/plan" in payload["error"]["message"]

    def test_wrong_method_is_405_listing_allowed(self, service):
        _, client = service
        status, payload = client.request("DELETE", "/v1/plan")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert payload["error"]["allowed"] == ["POST"]

    def test_validate_body_rejects_non_object(self):
        with pytest.raises(ValidationError):
            validate_body([1, 2], (Field("x"),))


class TestCompareAndFrontier:
    def test_compare_matches_direct_session(self, service):
        app, client = service
        document = client.compare("alexnet", "intel-haswell")
        report = app.session.compare("alexnet", "intel-haswell")
        assert document["best"] == report.best.strategy == "pbqp"
        rows = {r["strategy"]: r["total_ms"] for r in document["results"]}
        for strategy, total_ms, _ in report.rows():
            assert rows[strategy] == pytest.approx(total_ms)

    def test_compare_rejects_unknown_strategy(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.compare("alexnet", "intel-haswell", strategies=["nope"])
        assert excinfo.value.code == "unknown_strategy"

    def test_frontier_matches_direct_session(self, service):
        app, client = service
        document = client.frontier("alexnet", "intel-haswell", budget_steps=2)
        frontier = app.session.plan_frontier(
            "alexnet", "intel-haswell", budget_steps=2
        )
        assert len(document["points"]) == len(frontier.points)
        served = {canonical(p["vector"]) for p in document["points"]}
        direct = {canonical(p.vector.to_dict()) for p in frontier.points}
        assert served == direct

    def test_frontier_rejects_bad_constraints(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.frontier(
                "alexnet", "intel-haswell", constraints={"nonsense_max": 1.0}
            )
        assert excinfo.value.code == "invalid_constraints"

    def test_frontier_include_plans_embeds_full_document(self, service):
        _, client = service
        document = client.frontier(
            "alexnet", "intel-haswell", budget_steps=2, include_plans=True
        )
        assert "frontier" in document
        assert len(document["frontier"]["points"]) == len(document["points"])


class TestConcurrency:
    def test_concurrent_mixed_requests_are_correct_and_solve_free(self, service):
        """The acceptance gate: a warm mixed grid served concurrently.

        Every combination is warmed first, then hit concurrently many times:
        all responses must be 200, byte-identical to the direct session plan,
        and the whole barrage must perform zero PBQP solves.
        """
        app, client = service
        grid = [
            (model, platform, batch)
            for model in MODELS
            for platform in PLATFORMS_UNDER_TEST
            for batch in (1, 4)
        ]
        expected = {}
        for model, platform, batch in grid:
            client.plan(model, platform, batch=batch)  # warm the document
            direct = app.session.plan(model, platform, batch=batch)
            expected[(model, platform, batch)] = canonical(
                plan_to_dict(direct.network_plan)
            )

        requests = [grid[i % len(grid)] for i in range(100)]
        before = solve_count()
        with ThreadPoolExecutor(max_workers=16) as pool:
            documents = list(
                pool.map(lambda spec: client.plan(spec[0], spec[1], batch=spec[2]), requests)
            )
        assert solve_count() == before  # zero solves across 100 warm requests
        for spec, document in zip(requests, documents):
            assert document["from_cache"] is True
            assert canonical(document["plan"]) == expected[spec]

    def test_cold_stampede_builds_each_document_once(self, tmp_path):
        """Same-key concurrent cold requests: one build, identical answers."""
        app = PlannerApp(cache_dir=str(tmp_path))
        server = make_server(app)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = PlannerClient(*server.server_address[:2])
        try:
            client.wait_until_ready()
            with ThreadPoolExecutor(max_workers=8) as pool:
                documents = list(
                    pool.map(
                        lambda _: client.plan("alexnet", "intel-haswell"), range(8)
                    )
                )
            bodies = {canonical(d["plan"]) for d in documents}
            assert len(bodies) == 1
            counters = client.metrics()["counters"]
            assert counters["plan_cache_misses"] == 1
            assert counters["plan_cache_hits"] == 7
        finally:
            server.shutdown()
            server.server_close()
            app.close()


class TestWarming:
    def test_background_warming_makes_requests_solve_free(self, tmp_path):
        app = PlannerApp(cache_dir=str(tmp_path))
        try:
            enqueued = app.start_warming(
                models=["alexnet"], platforms=list(PLATFORMS_UNDER_TEST)
            )
            assert enqueued == 2
            assert app.warming.join(timeout=300)
            state = app.warming.state()
            assert state["completed"] == 2 and state["failed"] == 0
            before = solve_count()
            document, cached = app.plan_document("alexnet", "intel-haswell")
            assert cached is True and solve_count() == before
        finally:
            app.close()

    def test_failed_jobs_are_counted_not_fatal(self):
        metrics = Metrics()
        calls = []

        def run(job):
            calls.append(job)
            if job.model == "bad":
                raise RuntimeError("boom")

        queue = WarmingQueue(run, metrics=metrics, kind="serial")
        try:
            queue.enqueue([WarmJob("good", "intel-haswell"), WarmJob("bad", "intel-haswell")])
            assert queue.join(timeout=30)
            state = queue.state()
            assert state["completed"] == 1 and state["failed"] == 1
            counters = metrics.snapshot()["counters"]
            assert counters["warm_jobs_completed"] == 1
            assert counters["warm_jobs_failed"] == 1
        finally:
            queue.stop()

    def test_grid_jobs_covers_the_full_product(self):
        from repro.cost.platform import list_platforms
        from repro.models import MODEL_BUILDERS

        jobs = grid_jobs(batches=(1, 4))
        assert len(jobs) == len(MODEL_BUILDERS) * len(list_platforms()) * 2
        jobs = grid_jobs(models=["alexnet"], platforms=["gpu-sim"])
        assert jobs == [WarmJob("alexnet", "gpu-sim")]

    def test_executor_kinds(self):
        with executor("serial") as pool:
            assert pool.submit(lambda: 21 * 2).result() == 42
        with executor("thread", max_workers=2) as pool:
            assert pool.submit(lambda: 21 * 2).result() == 42
        with pytest.raises(ValueError, match="unknown executor kind"):
            with executor("quantum"):
                pass

    def test_serial_executor_captures_exceptions(self):
        with executor("serial") as pool:
            future = pool.submit(lambda: 1 / 0)
        assert isinstance(future.exception(), ZeroDivisionError)

    def test_process_executor_warms_a_store(self, tmp_path):
        from repro.cost.store import CostStore
        from repro.service.workers import warm_store_entry

        with executor("process", max_workers=2) as pool:
            future = pool.submit(
                warm_store_entry, str(tmp_path), "alexnet", "intel-haswell"
            )
            assert future.result(timeout=300) == "alexnet@intel-haswell/1t/b1/fp32"
        # The worker process persisted the tables into the shared store tier.
        store = CostStore(tmp_path)
        assert store.stats().entries == 1


class TestDiskDocumentTier:
    """Satellite of the precision PR: process-pool warming warms *responses*.

    A worker process can only hand results back through the disk, so the
    daemon consults the document tier under its cache dir on a DocumentCache
    miss — a process-warmed combination must be served with zero in-daemon
    PBQP solves.
    """

    def test_process_warmed_daemon_serves_plan_with_zero_solves(self, tmp_path):
        warmer = PlannerApp(
            cache_dir=str(tmp_path), warm_executor="process", warm_workers=2
        )
        try:
            enqueued = warmer.start_warming(
                models=["alexnet"], platforms=["intel-haswell"]
            )
            assert enqueued == 1
            assert warmer.warming.join(timeout=300)
            assert warmer.warming.state() == {
                "executor": "process",
                "pending": 0,
                "completed": 1,
                "failed": 0,
                "running": True,
            }
        finally:
            warmer.close()
        # A fresh daemon over the same cache dir: its DocumentCache is cold,
        # but the worker process left the document in the disk tier.
        daemon = PlannerApp(cache_dir=str(tmp_path))
        try:
            before = solve_count()
            status, payload = daemon.handle(
                "POST", "/v1/plan", {"model": "alexnet", "platform": "intel-haswell"}
            )
            assert status == 200
            assert solve_count() == before  # zero solves in the daemon process
            assert payload["model"] == "alexnet" and payload["dtype"] == "fp32"
            assert daemon.metrics.snapshot()["counters"]["plan_disk_hits"] == 1
            # The worker-built document is the one a direct build would produce.
            direct = Session().plan("alexnet", "intel-haswell")
            assert canonical(payload["plan"]) == canonical(
                plan_to_dict(direct.network_plan)
            )
        finally:
            daemon.close()

    def test_daemon_writes_documents_through_to_the_tier(self, tmp_path):
        first = PlannerApp(cache_dir=str(tmp_path))
        try:
            first.plan_document("alexnet", "intel-haswell", dtype="fp16")
        finally:
            first.close()
        second = PlannerApp(cache_dir=str(tmp_path))
        try:
            before = solve_count()
            document, cached = second.plan_document(
                "alexnet", "intel-haswell", dtype="fp16"
            )
            assert solve_count() == before and cached is False
            assert document["dtype"] == "fp16"
        finally:
            second.close()

    def test_corrupt_tier_entry_is_a_miss_not_an_error(self, tmp_path):
        from repro.service.app import plan_document_path
        from repro.service.workers import WarmJob

        path = plan_document_path(str(tmp_path), WarmJob("alexnet", "intel-haswell"))
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{not json")
        app = PlannerApp(cache_dir=str(tmp_path))
        try:
            document, _ = app.plan_document("alexnet", "intel-haswell")
            assert document["model"] == "alexnet"  # rebuilt and overwritten
        finally:
            app.close()

    def test_process_warming_requires_a_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            PlannerApp(warm_executor="process")


class TestMetricsUnit:
    def test_labelled_is_stable(self):
        assert labelled("requests", endpoint="POST /v1/plan", status=200) == (
            'requests{endpoint="POST /v1/plan",status="200"}'
        )

    def test_quantile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == pytest.approx(2.5)

    def test_histogram_snapshot(self):
        histogram = LatencyHistogram(window=8)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["mean_ms"] == pytest.approx(2.5)
        assert snapshot["max_ms"] == 4.0
        assert snapshot["p50_ms"] == pytest.approx(2.5)

    def test_metrics_time_context(self):
        metrics = Metrics()
        with metrics.time("op_ms"):
            pass
        snapshot = metrics.snapshot()
        assert snapshot["latencies_ms"]["op_ms"]["count"] == 1

    def test_request_latencies_recorded(self, service):
        _, client = service
        client.plan("alexnet", "intel-haswell")
        latencies = client.metrics()["latencies_ms"]
        key = 'request_latency{endpoint="POST /v1/plan"}'
        assert latencies[key]["count"] >= 1
        assert latencies[key]["p99_ms"] >= latencies[key]["p50_ms"] >= 0


class TestRegistry:
    def test_duplicate_endpoint_is_rejected(self):
        from repro.service.handlers import register_endpoint

        with pytest.raises(ValueError, match="duplicate endpoint"):

            @register_endpoint("GET", "/v1/healthz")
            def clashing(app, params):  # pragma: no cover - never called
                return {}

    def test_every_endpoint_has_a_description(self, service):
        app, _ = service
        for endpoint in app.endpoints.values():
            assert endpoint.description


class TestStoreIntegration:
    def test_fresh_daemon_over_warm_store_skips_profiling(self, service, tmp_path):
        """The shared disk tier: a new daemon reuses persisted cost tables."""
        app, client = service
        client.plan("alexnet", "intel-haswell")  # ensure the store is warm
        store_dir = app.session.store.cache_dir
        fresh = Session(cache_dir=store_dir)
        fresh.plan("alexnet", "intel-haswell")
        assert fresh.store.stats().hits >= 1
        assert fresh.store.stats().misses == 0

    def test_store_entries_land_in_platform_shards(self, service):
        app, client = service
        for platform in PLATFORMS_UNDER_TEST:  # self-sufficient under -k filters
            client.plan("alexnet", platform)
        store = app.session.store
        shards = {entry.path.parent.name for entry in store.entries()}
        assert shards >= set(PLATFORMS_UNDER_TEST)
