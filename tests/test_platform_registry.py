"""Tests for the platform registry: registration, CLI routing, serialization."""

import dataclasses
import json

import pytest

from repro.api import Session
from repro.cli import main
from repro.cost.platform import (
    PLATFORM_REGISTRY_VERSION,
    PLATFORMS,
    Platform,
    get_platform,
    intel_haswell,
    list_platforms,
    platform_version,
    register_platform,
    unregister_platform,
)
from repro.cost.serialize import load_plan, save_plan
from tests.conftest import build_tiny_network


def make_platform(name: str = "test-part", **overrides) -> Platform:
    """A valid platform for registration tests (Haswell numbers, new name)."""
    return dataclasses.replace(intel_haswell, name=name, **overrides)


@pytest.fixture
def scratch_platform():
    """Register a throwaway platform and always unregister it afterwards."""
    platform = register_platform(make_platform())
    yield platform
    unregister_platform(platform.name)


class TestRegistry:
    def test_builtin_zoo_has_at_least_four_platforms(self):
        names = list_platforms()
        assert len(names) >= 4
        assert {"intel-haswell", "arm-cortex-a57", "avx512-server", "gpu-sim"} <= set(
            names
        )

    def test_registration_round_trip(self, scratch_platform):
        assert "test-part" in list_platforms()
        assert get_platform("test-part") is scratch_platform
        assert PLATFORMS["test-part"] is scratch_platform

    def test_unregister_removes_and_returns(self):
        platform = register_platform(make_platform("fleeting-part"))
        assert unregister_platform("fleeting-part") is platform
        assert "fleeting-part" not in list_platforms()
        with pytest.raises(KeyError, match="unknown platform 'fleeting-part'"):
            unregister_platform("fleeting-part")

    def test_duplicate_name_rejected(self, scratch_platform):
        with pytest.raises(ValueError, match="duplicate platform name 'test-part'"):
            register_platform(make_platform())
        # The built-ins are protected the same way.
        with pytest.raises(ValueError, match="duplicate"):
            register_platform(make_platform("intel-haswell"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_platform(make_platform(""))

    def test_register_accepts_factory_decorator_style(self):
        @register_platform
        def _factory() -> Platform:
            return make_platform("decorated-part")

        try:
            # The decorator returns the *platform*, not the factory.
            assert isinstance(_factory, Platform)
            assert get_platform("decorated-part") is _factory
        finally:
            unregister_platform("decorated-part")

    def test_unknown_platform_error_lists_registered_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_platform("pdp-11")
        message = excinfo.value.args[0]
        assert "unknown platform 'pdp-11'" in message
        for name in ("intel-haswell", "avx512-server", "gpu-sim"):
            assert name in message

    def test_session_resolves_registered_platform(self, scratch_platform):
        session = Session()
        resolved, name = session._resolve_platform("test-part")
        assert resolved is scratch_platform and name == "test-part"
        with pytest.raises(KeyError, match="registered platforms"):
            session._resolve_platform("not-a-platform")


class TestPlatformVersioning:
    def test_digest_stable_and_parameter_sensitive(self):
        assert intel_haswell.digest() == intel_haswell.digest()
        tweaked = dataclasses.replace(intel_haswell, dram_bandwidth_gbps=22.0)
        assert tweaked.digest() != intel_haswell.digest()
        renamed = dataclasses.replace(intel_haswell, name="other")
        assert renamed.digest() != intel_haswell.digest()

    def test_platform_version_carries_registry_version(self):
        version = platform_version(intel_haswell)
        assert version.startswith(f"{PLATFORM_REGISTRY_VERSION}:")
        assert version.endswith(intel_haswell.digest())

    def test_store_key_carries_platform_version(self, tmp_path):
        from repro.cost.store import CostStore

        session = Session(cache_dir=tmp_path)
        session.select(build_tiny_network(), "gpu-sim")
        store = session.store
        assert isinstance(store, CostStore)
        entries = store.entries()
        assert entries, "selection should have persisted a table entry"
        key = entries[0].key
        assert key.platform == "gpu-sim"
        assert key.platform_version == platform_version(get_platform("gpu-sim"))

    def test_editing_platform_numbers_misses_stale_entry(self, tmp_path):
        """Same name, different parameters: the store must not serve the tables."""
        session = Session(cache_dir=tmp_path)
        network = build_tiny_network()
        register_platform(make_platform("mutable-part"))
        try:
            session.select(network, "mutable-part")
            store = session.store
            assert store.stats().misses == 1
            unregister_platform("mutable-part")
            register_platform(
                make_platform("mutable-part", dram_bandwidth_gbps=400.0)
            )
            fresh = Session(cache_dir=tmp_path)
            fresh.select(network, "mutable-part")
            assert fresh.store.stats().misses == 1  # not served from the stale entry
        finally:
            unregister_platform("mutable-part")


class TestFeatureGating:
    def test_has_feature(self):
        assert get_platform("gpu-sim").has_feature("simt")
        assert not intel_haswell.has_feature("simt")
        assert get_platform("avx512-server").has_feature("avx512")

    def test_simt_platform_prunes_row_streaming_variants(self, library):
        from repro.graph.scenario import ConvScenario

        scenario = ConvScenario(c=16, h=16, w=16, stride=1, k=3, m=16, padding=1)
        gpu = get_platform("gpu-sim")
        everywhere = {p.name for p in library.applicable(scenario)}
        on_gpu = {p.name for p in library.applicable(scenario, platform=gpu)}
        pruned = everywhere - on_gpu
        assert pruned, "the SIMT platform should decline some CPU-only variants"
        assert all(name.startswith(("winograd_1d", "fft_1d")) for name in pruned)
        # CPU platforms keep the full menu.
        assert {
            p.name for p in library.applicable(scenario, platform=intel_haswell)
        } == everywhere


class TestCLIPlatforms:
    def test_platforms_subcommand_lists_the_zoo(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("intel-haswell", "arm-cortex-a57", "avx512-server", "gpu-sim"):
            assert name in out
        # Calibration factors are part of the listing.
        assert "derate" in out and "launch" in out and "simt" in out

    def test_unknown_platform_exits_with_registered_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["select", "alexnet", "--platform", "pdp-11"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown platform 'pdp-11'" in err
        assert "avx512-server" in err and "intel-haswell" in err

    def test_tables_rejects_unknown_platform_helpfully(self, capsys):
        with pytest.raises(SystemExit):
            main(["tables", "--platform", "vax-780"])
        assert "registered platforms" in capsys.readouterr().err

    def test_select_works_on_new_platforms(self, capsys):
        for platform in ("avx512-server", "gpu-sim"):
            assert main(["select", "alexnet", "--platform", platform]) == 0
            out = capsys.readouterr().out
            assert f"on {platform}" in out
            assert "speedup over single-threaded SUM2D baseline" in out

    def test_registered_platform_accepted_by_cli(self, capsys):
        register_platform(make_platform("cli-part"))
        try:
            assert main(["platforms"]) == 0
            assert "cli-part" in capsys.readouterr().out
            assert main(["select", "alexnet", "--platform", "cli-part"]) == 0
        finally:
            unregister_platform("cli-part")


class TestPlanSerializationWithNewPlatforms:
    @pytest.mark.parametrize("platform", ["avx512-server", "gpu-sim"])
    def test_plan_round_trip_preserves_new_platform_names(
        self, platform, dt_graph, tmp_path
    ):
        session = Session()
        network = build_tiny_network()
        plan_handle = session.plan(network, platform)
        path = tmp_path / f"{platform}.json"
        plan_handle.save(path)
        document = json.loads(path.read_text())
        assert document["platform"] == platform
        loaded = load_plan(path, session.dt_graph)
        assert loaded.platform_name == platform
        assert loaded.conv_selections() == plan_handle.network_plan.conv_selections()
        assert loaded.total_cost == pytest.approx(plan_handle.network_plan.total_cost)

    def test_saved_plan_executes_through_session(self, tmp_path):
        session = Session()
        network = build_tiny_network()
        plan_handle = session.plan(network, "gpu-sim")
        path = tmp_path / "gpu_plan.json"
        save_plan(plan_handle.network_plan, path)
        reloaded = session.plan_from_file(path, network=network)
        report = reloaded.execute()
        assert report.platform == "gpu-sim"
        assert report.measured_total_ms > 0
