"""Peak-workspace accounting against real reference-execution allocations.

The multi-objective frontier trades plans off by ``peak_workspace_bytes`` —
the modelled scratch footprint of each primitive (``4.0 *
workspace_elements``, fp32).  These tests pin that model to reality: for
every primitive family, and for whole plans whose edges carry layout
conversion chains, the temporary allocations of the numpy reference
execution (measured with :mod:`tracemalloc`) must stay within the modelled
bound after accounting for the reference dtypes.

The reference primitives compute in float64 (complex128 for the fft family),
while the model prices fp32 buffers — but the fft model already counts a
complex element as two real elements, so a uniform widening factor of two
covers every family.  On top of the workspace itself the reference path
allocates dtype-widened copies of the input (original plus padded), kernel
and output; those are covered by an explicit I/O allowance, not by slack.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core.selector import PBQPSelector, SelectionContext
from repro.core.strategies import applicable_strategies, get_strategy
from repro.graph.scenario import ConvScenario
from repro.primitives.base import PrimitiveFamily
from repro.runtime import NetworkExecutor

#: Reference execution computes in float64 / complex128: twice the modelled
#: fp32 footprint (the fft model already doubles complex element counts).
DTYPE_WIDENING = 2.0

#: Fixed envelope for allocator bookkeeping and small numpy temporaries.
SLACK_BYTES = 256 * 1024


def _measure_peak(function) -> int:
    """Peak traced allocation of one call, in bytes."""
    gc.collect()
    tracemalloc.start()
    try:
        function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


#: One representative scenario every family supports (unit stride for kn2).
SCENARIO = ConvScenario(c=16, h=32, w=32, stride=1, k=3, m=16, padding=1)


def _family_members(library, family):
    members = sorted(
        (p for p in library if p.family is family and p.supports(SCENARIO)),
        key=lambda p: p.name,
    )
    assert members, f"no {family.value} primitive supports the test scenario"
    return members


class TestPrimitiveWorkspaceBounds:
    """Modelled workspace bounds the reference temporaries, family by family."""

    @pytest.mark.parametrize("family", list(PrimitiveFamily), ids=lambda f: f.value)
    def test_family_reference_execution_within_modelled_workspace(
        self, library, family, rng
    ):
        x = rng.standard_normal(SCENARIO.input_shape).astype(np.float32)
        kernel = rng.standard_normal(SCENARIO.kernel_shape).astype(np.float32)

        # The widened input (original and padded copies), kernel and output
        # buffers the reference path materializes around the workspace.
        element = 8  # float64
        io_allowance = element * (
            2 * SCENARIO.input_elements()
            + SCENARIO.kernel_elements()
            + 2 * SCENARIO.output_elements()
        )

        for primitive in _family_members(library, family):
            modelled = 4.0 * primitive.workspace_elements(SCENARIO)
            # The 1D Winograd model describes its row-streamed form; the
            # default path trades memory for numpy vectorization, so the
            # footprint is measured on the streamed path (and the two paths
            # are asserted identical below).
            streaming = hasattr(primitive, "streaming")
            if streaming:
                primitive.streaming = True
            try:
                peak = _measure_peak(
                    lambda: primitive._run_grouped(x, kernel, SCENARIO)
                )
            finally:
                if streaming:
                    primitive.streaming = False
            bound = io_allowance + DTYPE_WIDENING * modelled + SLACK_BYTES
            assert peak <= bound, (
                f"{primitive.name}: reference execution peaked at {peak} bytes, "
                f"modelled workspace {modelled:.0f} bytes allows only {bound:.0f}"
            )

    def test_winograd_streamed_path_matches_vectorized(self, library, rng):
        """The memory-faithful streamed 1D form computes the identical result."""
        x = rng.standard_normal(SCENARIO.input_shape).astype(np.float32)
        kernel = rng.standard_normal(SCENARIO.kernel_shape).astype(np.float32)
        checked = 0
        for primitive in _family_members(library, PrimitiveFamily.WINOGRAD):
            if not hasattr(primitive, "streaming"):
                continue
            vectorized = primitive._run_grouped(x, kernel, SCENARIO)
            primitive.streaming = True
            try:
                streamed = primitive._run_grouped(x, kernel, SCENARIO)
            finally:
                primitive.streaming = False
            np.testing.assert_allclose(streamed, vectorized, rtol=1e-10, atol=1e-10)
            checked += 1
        assert checked > 0

    def test_workspace_magnitudes_support_budget_flips(self, library):
        """The per-family footprint ordering behind cap-driven family flips."""
        by_family = {
            family: min(
                p.workspace_elements(SCENARIO)
                for p in library
                if p.family is family and p.supports(SCENARIO)
            )
            for family in PrimitiveFamily
        }
        assert by_family[PrimitiveFamily.DIRECT] == 0.0
        assert by_family[PrimitiveFamily.SUM2D] == 0.0
        # The GEMM/transform families all need real scratch, with the patch
        # matrix the largest — so tightening a workspace cap drives selection
        # away from im2/fft toward direct and the 1D Winograd forms.
        for heavy in (PrimitiveFamily.IM2, PrimitiveFamily.FFT):
            assert by_family[heavy] > by_family[PrimitiveFamily.WINOGRAD] > 0.0


class TestPlanWorkspaceAccounting:
    """Whole-plan accounting: decisions, conversions and executed footprint."""

    @pytest.fixture(scope="class")
    def context(self, tiny_network_session, library, dt_graph, intel):
        return SelectionContext.create(
            tiny_network_session, platform=intel, library=library, dt_graph=dt_graph
        )

    def test_peak_is_max_over_layer_decisions(self, context):
        plan = PBQPSelector().select(context)
        workspaces = [
            context.tables.primitive_workspace(name, decision.primitive)
            for name, decision in plan.layer_decisions.items()
            if decision.primitive is not None
        ]
        assert plan.peak_workspace_bytes == max(workspaces)
        for name, decision in plan.layer_decisions.items():
            if decision.primitive is not None:
                assert decision.workspace_bytes == context.tables.primitive_workspace(
                    name, decision.primitive
                )

    @pytest.mark.parametrize("strategy", ["direct", "im2", "kn2", "winograd", "fft"])
    def test_executed_plan_within_modelled_peak(
        self, context, library, strategy, rng
    ):
        """Family-forced plans (with their conversion chains) stay in bounds."""
        chosen = get_strategy(strategy)
        if chosen not in applicable_strategies(context):
            pytest.skip(f"{strategy} does not apply here")
        plan = chosen.build_plan(context)

        # Everything the forward pass materializes besides primitive
        # workspace: per-layer activations (original and dtype-widened
        # copies, padded where applicable) and the buffers produced by each
        # layout-conversion hop along the plan's edges.
        element = 8
        activation_allowance = element * 4 * sum(
            int(np.prod(shape)) for shape in context.tables.shapes.values()
        )
        conversion_allowance = element * 2 * sum(
            len(edge.chain) * int(np.prod(context.tables.shapes[edge.producer]))
            for edge in plan.edge_decisions
            if edge.chain is not None
        )

        executor = NetworkExecutor(
            context.network, plan, library, seed=0
        )
        x = rng.standard_normal((3, 32, 32)).astype(np.float32)
        peak = _measure_peak(lambda: executor.run(x))
        bound = (
            activation_allowance
            + conversion_allowance
            + DTYPE_WIDENING * plan.peak_workspace_bytes
            + SLACK_BYTES
        )
        assert peak <= bound, (
            f"strategy {strategy}: executed peak {peak} bytes exceeds "
            f"modelled envelope {bound:.0f} (peak workspace "
            f"{plan.peak_workspace_bytes:.0f})"
        )

    def test_peak_survives_serialization(self, context, dt_graph):
        from repro.cost.serialize import plan_from_dict, plan_to_dict

        plan = PBQPSelector().select(context)
        document = plan_to_dict(plan)
        loaded = plan_from_dict(document, dt_graph)
        assert loaded.peak_workspace_bytes == plan.peak_workspace_bytes
        assert loaded.energy_proxy_j == pytest.approx(plan.energy_proxy_j)
        assert loaded.cost_vector().as_tuple() == pytest.approx(
            plan.cost_vector().as_tuple()
        )
