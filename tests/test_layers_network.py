"""Tests for the layer hierarchy and the network DAG."""

import pytest

from repro.graph.layer import (
    ConcatLayer,
    ConvLayer,
    DropoutLayer,
    EltwiseAddLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    LayerKind,
    LRNLayer,
    PoolLayer,
    PoolMode,
    ReLULayer,
    SoftmaxLayer,
)
from repro.graph.network import Network, NetworkValidationError


class TestLayerShapes:
    def test_input_layer(self):
        layer = InputLayer("data", shape=(3, 224, 224))
        assert layer.output_shape([]) == (3, 224, 224)
        with pytest.raises(ValueError):
            layer.output_shape([(3, 4, 5)])

    def test_conv_layer_scenario_and_shape(self):
        layer = ConvLayer("conv", out_channels=64, kernel=7, stride=2, padding=3)
        scenario = layer.scenario((3, 224, 224))
        assert scenario.output_shape == (64, 112, 112)
        assert layer.output_shape([(3, 224, 224)]) == (64, 112, 112)
        assert layer.is_convolution
        assert layer.kind is LayerKind.CONVOLUTION

    def test_pool_layer_ceil_mode_matches_caffe(self):
        # AlexNet pool1: 55 -> 27 with kernel 3 stride 2 (ceil rounding).
        pool = PoolLayer("pool", kernel=3, stride=2, mode=PoolMode.MAX)
        assert pool.output_shape([(96, 55, 55)]) == (96, 27, 27)
        # GoogLeNet pool1: 112 -> 56.
        assert pool.output_shape([(64, 112, 112)]) == (64, 56, 56)

    def test_pool_layer_floor_mode(self):
        pool = PoolLayer("pool", kernel=2, stride=2, ceil_mode=False)
        assert pool.output_shape([(64, 224, 224)]) == (64, 112, 112)
        assert pool.output_shape([(64, 7, 7)]) == (64, 3, 3)

    def test_pool_with_padding_matches_caffe_geometry(self):
        # Caffe: ceil((14 + 2*1 - 3) / 2) + 1 = 8, and the last window starts
        # inside the padded input so it is not clipped.
        pool = PoolLayer("pool", kernel=3, stride=2, padding=1)
        assert pool.output_shape([(16, 14, 14)])[1:] == (8, 8)
        # The inception branch pool (kernel 3, stride 1, pad 1) preserves size.
        branch_pool = PoolLayer("pool", kernel=3, stride=1, padding=1)
        assert branch_pool.output_shape([(16, 14, 14)])[1:] == (14, 14)

    def test_shape_preserving_layers(self):
        shape = (32, 14, 14)
        assert ReLULayer("r").output_shape([shape]) == shape
        assert LRNLayer("n").output_shape([shape]) == shape
        assert DropoutLayer("d").output_shape([shape]) == shape
        assert SoftmaxLayer("s").output_shape([shape]) == shape

    def test_fully_connected_and_flatten(self):
        assert FullyConnectedLayer("fc", out_features=4096).output_shape([(256, 6, 6)]) == (
            4096,
            1,
            1,
        )
        assert FlattenLayer("f").output_shape([(256, 6, 6)]) == (256 * 36, 1, 1)

    def test_concat_sums_channels(self):
        concat = ConcatLayer("c")
        assert concat.output_shape([(64, 28, 28), (128, 28, 28), (32, 28, 28)]) == (224, 28, 28)

    def test_concat_rejects_mismatched_spatial(self):
        concat = ConcatLayer("c")
        with pytest.raises(ValueError):
            concat.output_shape([(64, 28, 28), (64, 14, 14)])

    def test_concat_requires_inputs(self):
        with pytest.raises(ValueError):
            ConcatLayer("c").output_shape([])

    def test_fc_macs(self):
        fc = FullyConnectedLayer("fc", out_features=10)
        assert fc.macs((4, 2, 2)) == 4 * 2 * 2 * 10

    def test_eltwise_add_preserves_shape(self):
        add = EltwiseAddLayer("add")
        assert add.kind is LayerKind.ELTWISE_ADD
        assert add.arity() == (2, -1)
        assert add.output_shape([(64, 28, 28), (64, 28, 28)]) == (64, 28, 28)
        assert add.output_shape([(8, 4, 4)] * 3) == (8, 4, 4)

    def test_eltwise_add_rejects_mismatched_shapes(self):
        add = EltwiseAddLayer("add")
        with pytest.raises(ValueError):
            add.output_shape([(64, 28, 28), (32, 28, 28)])
        with pytest.raises(ValueError):
            add.output_shape([(64, 28, 28), (64, 14, 14)])

    def test_eltwise_add_arity_enforced_in_network(self):
        net = Network("n")
        net.add_layer(InputLayer("data", shape=(4, 8, 8)))
        with pytest.raises(NetworkValidationError):
            net.add_layer(EltwiseAddLayer("add"), ["data"])


class TestPoolGeometryEdgeCases:
    """The ceil/padding clipping branch of :meth:`PoolLayer._pooled`."""

    def test_ceil_mode_clips_window_starting_in_the_padding(self):
        # 13 -> padded 13+2*1: ceil((13 + 2 - 3) / 2) + 1 = 7 + 1 = 8, but the
        # 8th window would start at offset 14 >= 13 + 1, outside the real
        # input — Caffe clips it back to 7.
        pool = PoolLayer("pool", kernel=3, stride=2, padding=1)
        assert pool.output_shape([(8, 13, 13)])[1:] == (7, 7)

    def test_clipping_only_applies_with_padding(self):
        # Without padding the same geometry keeps the ceil-rounded extra
        # window (it covers real input rows).
        pool = PoolLayer("pool", kernel=3, stride=2, padding=0)
        assert pool.output_shape([(8, 13, 13)])[1:] == (6, 6)
        assert pool.output_shape([(8, 14, 14)])[1:] == (7, 7)

    def test_global_pool_collapses_to_one_pixel(self):
        pool = PoolLayer("pool", kernel=7, stride=1, mode=PoolMode.AVERAGE)
        assert pool.output_shape([(1024, 7, 7)]) == (1024, 1, 1)
        floor_pool = PoolLayer("pool", kernel=7, stride=1, ceil_mode=False)
        assert floor_pool.output_shape([(512, 7, 7)]) == (512, 1, 1)

    def test_kernel_larger_than_input_is_floored_to_one(self):
        pool = PoolLayer("pool", kernel=5, stride=2, ceil_mode=False)
        assert pool.output_shape([(4, 3, 3)]) == (4, 1, 1)

    def test_ceil_and_floor_disagree_on_odd_remainders(self):
        ceil_pool = PoolLayer("pool", kernel=3, stride=2, ceil_mode=True)
        floor_pool = PoolLayer("pool", kernel=3, stride=2, ceil_mode=False)
        # 10 - 3 = 7: ceil(7/2)+1 = 5, floor(7/2)+1 = 4.
        assert ceil_pool.output_shape([(4, 10, 10)])[1:] == (5, 5)
        assert floor_pool.output_shape([(4, 10, 10)])[1:] == (4, 4)

    def test_rectangular_inputs_pool_per_axis(self):
        pool = PoolLayer("pool", kernel=3, stride=2, padding=1)
        assert pool.output_shape([(8, 13, 14)]) == (8, 7, 8)


class TestNetwork:
    def test_duplicate_layer_rejected(self):
        net = Network("n")
        net.add_layer(InputLayer("data", shape=(3, 8, 8)))
        with pytest.raises(NetworkValidationError):
            net.add_layer(InputLayer("data", shape=(3, 8, 8)))

    def test_unknown_producer_rejected(self):
        net = Network("n")
        with pytest.raises(NetworkValidationError):
            net.add_layer(ReLULayer("r"), ["ghost"])

    def test_arity_enforced(self):
        net = Network("n")
        net.add_layer(InputLayer("a", shape=(1, 4, 4)))
        net.add_layer(InputLayer("b", shape=(1, 4, 4)))
        with pytest.raises(NetworkValidationError):
            net.add_layer(ReLULayer("r"), ["a", "b"])

    def test_topological_order_respects_dependencies(self, tiny_network):
        order = [layer.name for layer in tiny_network.topological_order()]
        assert order.index("conv1") < order.index("pool1")
        assert order.index("branch2_reduce") < order.index("branch2")
        for producer in ("branch1", "branch2", "branch3"):
            assert order.index(producer) < order.index("concat")

    def test_shape_inference_on_branching_network(self, tiny_network):
        shapes = tiny_network.infer_shapes()
        assert shapes["conv1"] == (8, 16, 16)
        assert shapes["pool1"] == (8, 8, 8)
        assert shapes["concat"] == (20, 8, 8)
        assert shapes["prob"] == (10, 1, 1)

    def test_conv_scenarios_extraction(self, tiny_network):
        scenarios = tiny_network.conv_scenarios()
        assert set(scenarios) == {
            "conv1",
            "branch1",
            "branch2_reduce",
            "branch2",
            "branch3",
            "conv2",
        }
        assert scenarios["conv1"].stride == 2
        assert scenarios["conv2"].groups == 2

    def test_edges_and_consumers(self, tiny_network):
        assert set(tiny_network.consumers_of("pool1")) == {
            "branch1",
            "branch2_reduce",
            "branch3_pool",
        }
        assert tiny_network.inputs_of("concat") == ["branch1", "branch2", "branch3"]
        assert len(tiny_network.edges()) == sum(
            len(tiny_network.inputs_of(name)) for name in tiny_network.layer_names()
        )

    def test_output_layers(self, tiny_network):
        assert [layer.name for layer in tiny_network.output_layers()] == ["prob"]

    def test_layer_lookup_errors(self, tiny_network):
        with pytest.raises(KeyError):
            tiny_network.layer("missing")
        assert "conv1" in tiny_network
        assert "missing" not in tiny_network

    def test_cycle_detection(self):
        net = Network("cyclic")
        net.add_layer(InputLayer("data", shape=(1, 4, 4)))
        net.add_layer(ReLULayer("a"), ["data"])
        net.add_layer(ReLULayer("b"), ["a"])
        # Manufacture a cycle by editing the internal structures directly.
        net._inputs["a"].append("b")
        net._consumers["b"].append("a")
        with pytest.raises(NetworkValidationError):
            net.topological_order()

    def test_validate_empty_network(self):
        with pytest.raises(NetworkValidationError):
            Network("empty").validate()

    def test_validate_requires_input_layer(self):
        net = Network("no-input")
        net.add_layer(InputLayer("data", shape=(1, 4, 4)))
        net.add_layer(ReLULayer("r"), ["data"])
        # Simulate a graph whose entry point is not an InputLayer (e.g. built
        # by hand or deserialized incorrectly).
        del net._layers["data"]
        del net._inputs["data"]
        del net._consumers["data"]
        net._inputs["r"] = []
        with pytest.raises(NetworkValidationError):
            net.validate()

    def test_validate_passes_on_well_formed_network(self, tiny_network):
        tiny_network.validate()

    def test_total_conv_macs_positive(self, tiny_network):
        assert tiny_network.total_conv_macs() > 0

    def test_summary_mentions_every_layer(self, tiny_network):
        text = tiny_network.summary()
        for name in tiny_network.layer_names():
            assert name in text
