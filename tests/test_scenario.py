"""Tests for convolutional scenarios."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.scenario import ConvScenario


class TestValidation:
    def test_basic_construction(self):
        s = ConvScenario(c=3, h=227, w=227, stride=4, k=11, m=96)
        assert s.input_shape == (3, 227, 227)
        assert s.kernel_shape == (96, 3, 11, 11)

    @pytest.mark.parametrize("field", ["c", "h", "w", "stride", "k", "m", "groups"])
    def test_nonpositive_fields_rejected(self, field):
        kwargs = dict(c=3, h=8, w=8, stride=1, k=3, m=4, padding=0, groups=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ConvScenario(**kwargs)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            ConvScenario(c=3, h=8, w=8, k=3, m=4, padding=-1)

    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError):
            ConvScenario(c=3, h=8, w=8, k=3, m=4, groups=2)
        with pytest.raises(ValueError):
            ConvScenario(c=4, h=8, w=8, k=3, m=3, groups=2)

    def test_kernel_must_fit_in_padded_input(self):
        with pytest.raises(ValueError):
            ConvScenario(c=3, h=2, w=2, k=5, m=4, padding=0)
        # With enough padding the same kernel fits.
        ConvScenario(c=3, h=2, w=2, k=5, m=4, padding=2)


class TestGeometry:
    def test_alexnet_conv1_geometry(self):
        s = ConvScenario(c=3, h=227, w=227, stride=4, k=11, m=96)
        assert s.output_shape == (96, 55, 55)

    def test_same_padding_preserves_size(self):
        s = ConvScenario(c=16, h=14, w=14, stride=1, k=3, m=32, padding=1)
        assert s.out_h == 14 and s.out_w == 14

    def test_pointwise_and_strided_flags(self):
        assert ConvScenario(c=4, h=8, w=8, k=1, m=4).is_pointwise
        assert not ConvScenario(c=4, h=8, w=8, k=3, m=4, padding=1).is_pointwise
        assert ConvScenario(c=4, h=8, w=8, k=3, m=4, padding=1, stride=2).is_strided

    def test_macs_matches_textbook_formula(self):
        s = ConvScenario(c=8, h=10, w=12, stride=1, k=3, m=16, padding=1)
        assert s.macs() == 10 * 12 * 8 * 9 * 16
        assert s.flops() == 2 * s.macs()

    def test_grouped_macs_divide_channels(self):
        full = ConvScenario(c=8, h=10, w=10, k=3, m=16, padding=1)
        grouped = ConvScenario(c=8, h=10, w=10, k=3, m=16, padding=1, groups=2)
        assert grouped.macs() == full.macs() // 2

    def test_element_counts(self):
        s = ConvScenario(c=2, h=4, w=4, k=3, m=3, padding=1)
        assert s.input_elements() == 2 * 4 * 4
        assert s.output_elements() == 3 * 4 * 4
        assert s.kernel_elements() == 3 * 2 * 9

    def test_with_batch_scales_work(self):
        s = ConvScenario(c=4, h=8, w=8, k=3, m=8, padding=1)
        batched = s.with_batch(4)
        assert batched.macs() == 4 * s.macs()
        with pytest.raises(ValueError):
            s.with_batch(0)

    def test_with_batch_is_exact_for_strided_scenarios(self):
        # Regression: the old stub folded the batch into the image height,
        # which lets stride-2 windows straddle image boundaries — the issue's
        # example scenario costs 7776 MACs for 4 images, not 8424.
        s = ConvScenario(c=3, h=7, w=7, k=3, stride=2, m=8)
        assert s.macs() == 1944
        assert s.with_batch(4).macs() == 4 * s.macs() == 7776

    def test_with_batch_is_exact_for_padded_scenarios(self):
        # Padding applies per image; height folding would also pad between
        # the stacked images and overcount the boundary windows.
        s = ConvScenario(c=4, h=9, w=9, k=3, stride=2, m=8, padding=1)
        for n in (2, 3, 16):
            assert s.with_batch(n).macs() == n * s.macs()

    def test_with_batch_keeps_per_image_geometry(self):
        s = ConvScenario(c=4, h=8, w=8, k=3, m=8, padding=1)
        batched = s.with_batch(8)
        assert batched.output_shape == s.output_shape
        assert batched.input_shape == s.input_shape
        assert batched.batched_input_shape == (8, 4, 8, 8)
        assert batched.batched_output_shape == (8,) + s.output_shape
        assert batched.kernel_elements() == s.kernel_elements()
        assert batched.input_elements() == 8 * s.input_elements()
        assert batched.output_elements() == 8 * s.output_elements()
        assert batched.is_batched and not s.is_batched
        assert batched.per_image == s
        assert s.per_image is s

    def test_describe_mentions_all_fields(self):
        s = ConvScenario(c=4, h=8, w=9, stride=2, k=3, m=8, padding=1, groups=2, batch=4)
        text = s.describe()
        for token in (
            "C=4", "H=8", "W=9", "stride=2", "K=3", "M=8", "pad=1", "groups=2", "N=4",
        ):
            assert token in text
        assert "N=" not in s.per_image.describe()

    def test_frozen(self):
        s = ConvScenario(c=4, h=8, w=8, k=3, m=8, padding=1)
        with pytest.raises(AttributeError):
            s.c = 5  # type: ignore[misc]


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        c=st.integers(1, 64),
        size=st.integers(4, 48),
        stride=st.integers(1, 4),
        k=st.sampled_from([1, 3, 5, 7]),
        m=st.integers(1, 64),
        padding=st.integers(0, 3),
    )
    def test_output_dimensions_always_positive(self, c, size, stride, k, m, padding):
        if k > size + 2 * padding:
            with pytest.raises(ValueError):
                ConvScenario(c=c, h=size, w=size, stride=stride, k=k, m=m, padding=padding)
            return
        s = ConvScenario(c=c, h=size, w=size, stride=stride, k=k, m=m, padding=padding)
        assert s.out_h >= 1 and s.out_w >= 1
        assert s.macs() > 0
        # The output never exceeds the padded input extent.
        assert s.out_h <= size + 2 * padding
        assert (s.out_h - 1) * stride + k <= size + 2 * padding

    @settings(max_examples=30, deadline=None)
    @given(stride=st.integers(1, 4))
    def test_larger_stride_never_increases_work(self, stride):
        base = ConvScenario(c=8, h=32, w=32, stride=stride, k=3, m=8, padding=1)
        faster = ConvScenario(c=8, h=32, w=32, stride=stride + 1, k=3, m=8, padding=1)
        assert faster.macs() <= base.macs()
