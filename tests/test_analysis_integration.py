"""End-to-end wiring of the analysis layer: CLI, service, and Session hooks."""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.plan_verifier import PlanVerificationError, verify_document
from repro.api import Session
from repro.cli import main
from repro.core.strategies import STRATEGIES, Strategy, get_strategy
from repro.cost.serialize import (
    PROVIDER_PLATFORM_LABELS,
    cost_tables_from_dict,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.multiobj.frontier import Frontier
from repro.service.app import (
    PlannerApp,
    build_plan_document,
    plan_document_path,
    read_plan_document,
    write_plan_document,
)
from repro.service.workers import WarmJob


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def plan_doc(session):
    return plan_to_dict(session.plan("alexnet", "intel-haswell").network_plan)


# ---------------------------------------------------------------------------
# repro check / repro lint CLI


def test_check_cli_exit_codes(tmp_path, session, plan_doc, capsys):
    good = tmp_path / "good.json"
    save_plan(session.plan("alexnet", "intel-haswell").network_plan, good)
    assert main(["check", str(good)]) == 0

    bad_doc = copy.deepcopy(plan_doc)
    bad_doc["cost_vector"]["time_ms"] *= 1.5
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(bad_doc))
    assert main(["check", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RV130" in out

    assert main(["check", str(tmp_path / "missing.json")]) == 2
    # A mix of good and bad paths is still a failure.
    assert main(["check", str(good), str(bad)]) == 1


def test_check_cli_json_output(tmp_path, session, capsys):
    good = tmp_path / "good.json"
    save_plan(session.plan("alexnet", "intel-haswell").network_plan, good)
    assert main(["check", "--json", str(good)]) == 0
    reports = json.loads(capsys.readouterr().out)
    assert isinstance(reports, list) and len(reports) == 1
    assert reports[0]["format"] == "repro/analysis-report/v1"


def test_lint_cli(tmp_path, capsys):
    assert main(["lint", "src"]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.models import MODEL_BUILDERS\nMODEL_BUILDERS.clear()\n"
    )
    assert main(["lint", str(bad)]) == 1
    capsys.readouterr()
    assert main(["lint", "--json", str(bad)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert any(f["rule"] == "LT201" for f in report["findings"])


# ---------------------------------------------------------------------------
# /v1/validate


def test_validate_endpoint(session, plan_doc):
    app = PlannerApp(session=session)
    status, payload = app.handle("POST", "/v1/validate", {"document": plan_doc})
    assert status == 200
    assert payload["ok"] is True and payload["errors"] == 0

    bad_doc = copy.deepcopy(plan_doc)
    bad_doc["dtype"] = "int4"
    status, payload = app.handle("POST", "/v1/validate", {"document": bad_doc})
    assert status == 200
    assert payload["ok"] is False and payload["errors"] >= 1
    rules = {f["rule"] for f in payload["report"]["findings"]}
    assert "RV102" in rules

    status, _ = app.handle("POST", "/v1/validate", {})
    assert status == 400


# ---------------------------------------------------------------------------
# disk document tier admission


def test_corrupt_disk_document_is_rejected_and_replaced(tmp_path):
    app = PlannerApp(session=Session(), cache_dir=str(tmp_path))
    job = WarmJob(model="alexnet", platform="intel-haswell")
    document = build_plan_document(app.session, "alexnet", "intel-haswell")
    corrupt = copy.deepcopy(document)
    corrupt["total_ms"] += 7.0
    corrupt["plan"]["total_ms"] += 7.0
    write_plan_document(str(tmp_path), corrupt, job)

    served, cached = app.plan_document("alexnet", "intel-haswell")
    assert not cached
    counters = app.metrics.snapshot()["counters"]
    assert counters.get("plan_disk_invalid") == 1
    assert "plan_disk_hits" not in counters
    assert served["total_ms"] == pytest.approx(document["total_ms"])

    # The fresh solve overwrote the poisoned file: a restart now disk-hits.
    on_disk = read_plan_document(str(tmp_path), job)
    assert verify_document(on_disk, source=plan_document_path(str(tmp_path), job)).ok


def test_valid_disk_document_is_served(tmp_path):
    app = PlannerApp(session=Session(), cache_dir=str(tmp_path))
    job = WarmJob(model="alexnet", platform="intel-haswell")
    document = build_plan_document(app.session, "alexnet", "intel-haswell")
    write_plan_document(str(tmp_path), document, job)

    served, _ = app.plan_document("alexnet", "intel-haswell")
    counters = app.metrics.snapshot()["counters"]
    assert counters.get("plan_disk_hits") == 1
    assert "plan_disk_invalid" not in counters
    assert served == document


# ---------------------------------------------------------------------------
# Session verify hooks


class _CorruptStrategy(Strategy):
    """Delegates to pbqp, then swaps in a phantom primitive: a buggy strategy."""

    name = "corrupt-test"

    def build_plan(self, context):
        plan = get_strategy("pbqp").build_plan(context)
        layer = next(
            name for name, d in plan.layer_decisions.items() if d.primitive
        )
        plan.layer_decisions[layer].primitive = "conv_quantum9000"
        return plan


def test_session_plan_verify_catches_buggy_strategy(monkeypatch):
    monkeypatch.setitem(STRATEGIES, "corrupt-test", _CorruptStrategy())
    session = Session()
    with pytest.raises(PlanVerificationError) as excinfo:
        session.plan("alexnet", "intel-haswell", strategy="corrupt-test")
    assert "RV110" in str(excinfo.value)
    assert any(f.rule == "RV110" for f in excinfo.value.report.findings)
    # The opt-out loads the same plan without the gate.
    plan = session.plan(
        "alexnet", "intel-haswell", strategy="corrupt-test", verify=False
    )
    assert plan.network_plan.strategy == "pbqp"


def test_plan_from_file_verify_refuses_corrupt_document(tmp_path, session, plan_doc):
    bad_doc = copy.deepcopy(plan_doc)
    bad_doc["total_ms"] += 3.0
    path = tmp_path / "tampered.json"
    path.write_text(json.dumps(bad_doc))
    with pytest.raises(PlanVerificationError) as excinfo:
        session.plan_from_file(path)
    assert "RV131" in str(excinfo.value)
    plan = session.plan_from_file(path, verify=False)
    assert plan.network_plan.network_name == "alexnet"


# ---------------------------------------------------------------------------
# satellite: unregistered platform is a clear error, not a KeyError


def test_plan_from_dict_unregistered_platform_lists_registered(session, plan_doc):
    bad_doc = copy.deepcopy(plan_doc)
    bad_doc["platform"] = "gone-platform"
    with pytest.raises(ValueError, match="registered platforms") as excinfo:
        plan_from_dict(bad_doc, session.dt_graph)
    message = str(excinfo.value)
    assert "gone-platform" in message
    assert "intel-haswell" in message


def test_plan_from_dict_accepts_provider_labels(session, plan_doc):
    for label in PROVIDER_PLATFORM_LABELS:
        doc = copy.deepcopy(plan_doc)
        doc["platform"] = label
        assert plan_from_dict(doc, session.dt_graph).platform_name == label


def test_check_cli_reports_unregistered_platform(tmp_path, plan_doc, capsys):
    bad_doc = copy.deepcopy(plan_doc)
    bad_doc["platform"] = "gone-platform"
    path = tmp_path / "orphan.json"
    path.write_text(json.dumps(bad_doc))
    assert main(["check", str(path)]) == 1
    assert "RV101" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# satellite: format mismatches name the expected token


def test_format_mismatch_messages_name_expected_token(session):
    with pytest.raises(ValueError, match=r"repro/plan/v2"):
        plan_from_dict({"format": "repro/plan/v0"}, session.dt_graph)
    with pytest.raises(ValueError, match=r"repro/cost-tables/v3"):
        cost_tables_from_dict({"format": "repro/cost-tables/v1"}, session.dt_graph)
    with pytest.raises(ValueError, match=r"repro/frontier/v1"):
        Frontier.from_dict({"format": "nope"}, session.dt_graph)
